"""Membership-inference attack suite.

External (against the released global model):
  Ob-Label, Ob-MALT, Ob-NN, Ob-BlindMI (output-based), Pb-Bayes (parameter-
  based) — the five state-of-the-art attacks of the paper's RQ3.

Internal (malicious server, Nasr et al.):
  PassiveServerAttack (multi-round observation) and ActiveServerAttack
  (gradient ascent on targets).

Adaptive (RQ4): see :mod:`repro.attacks.adaptive`.
"""

from repro.attacks.base import (
    AttackData,
    AttackReport,
    CIPTarget,
    MIAttack,
    PlainTarget,
    TargetModel,
    evaluate_attack,
)
from repro.attacks.shadow import ShadowConfig, train_shadow
from repro.attacks.ob_label import ObLabelAttack
from repro.attacks.ob_malt import AnchoredLossAttack, ObMALTAttack
from repro.attacks.ob_nn import ObNNAttack, posterior_features
from repro.attacks.ob_blindmi import ObBlindMIAttack, gaussian_mmd
from repro.attacks.pb_bayes import PbBayesAttack, whitebox_features
from repro.attacks.lira import LiRAAttack, LiRAConfig, logit_confidence
from repro.attacks.internal import (
    ActiveServerAttack,
    InternalAttackReport,
    PassiveServerAttack,
    StateEvaluator,
    cip_zero_blend_forward,
    plain_forward,
)
from repro.attacks import adaptive

EXTERNAL_ATTACKS = {
    "Ob-Label": ObLabelAttack,
    "Ob-MALT": ObMALTAttack,
    "Ob-NN": ObNNAttack,
    "Ob-BlindMI": ObBlindMIAttack,
    "Pb-Bayes": PbBayesAttack,
}

__all__ = [
    "AttackData",
    "AttackReport",
    "MIAttack",
    "TargetModel",
    "PlainTarget",
    "CIPTarget",
    "evaluate_attack",
    "ShadowConfig",
    "train_shadow",
    "ObLabelAttack",
    "ObMALTAttack",
    "AnchoredLossAttack",
    "ObNNAttack",
    "ObBlindMIAttack",
    "PbBayesAttack",
    "LiRAAttack",
    "LiRAConfig",
    "logit_confidence",
    "posterior_features",
    "whitebox_features",
    "gaussian_mmd",
    "PassiveServerAttack",
    "ActiveServerAttack",
    "InternalAttackReport",
    "StateEvaluator",
    "plain_forward",
    "cip_zero_blend_forward",
    "adaptive",
    "EXTERNAL_ATTACKS",
]
