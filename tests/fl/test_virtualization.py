"""Client virtualization and sharded hierarchical aggregation.

The acceptance contract of the scaling layer (see ``repro.fl.registry``
and DESIGN.md's scaling section):

* a virtualized run is bit-identical to the live-object run on the same
  sampled cohorts, on every execution backend;
* state-store evict/rehydrate is bit-identical — CIP perturbation state,
  SGD momentum, and top-k wire residuals all survive a disk round-trip;
* sharded hierarchical FedAvg reproduces flat FedAvg bitwise; robust
  rules apply shard-locally and still run end to end;
* sparse id spaces (ids nowhere near contiguous) work through rounds,
  history, and evaluation;
* virtualized checkpoint/resume — including spilled states — is
  bit-identical, and live/virtual checkpoints refuse to cross-restore;
* chaos (wire corruption) quarantines identically under virtualization.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.core.cip_client import CIPClient
from repro.core.config import CheckpointConfig, CIPConfig, FaultConfig
from repro.data.partition import partition_iid
from repro.fl.aggregation import ShardAggregator, fedavg, shard_partition
from repro.fl.client import ClientConfig, FLClient
from repro.fl.executor import make_executor
from repro.fl.registry import (
    ClientRegistry,
    InMemoryStateStore,
    LRUStateStore,
    make_state_store,
    mutable_state_nbytes,
)
from repro.fl.server import FLServer
from repro.fl.simulation import FederatedSimulation
from repro.nn.models import build_model
from repro.utils.rng import derive_rng

BACKENDS = ("sequential", "process", "batched", "async")


def _mlp_factory():
    return build_model("mlp", 3, in_features=10, hidden=(16,), seed=0)


def _dual_factory():
    return build_model("mlp", 3, in_features=10, hidden=(16,), dual_channel=True, seed=0)


def _shard_map(dataset, ids):
    shards = partition_iid(dataset, len(ids), seed=0)
    return dict(zip(ids, shards))


def _client_factory(shards, lr=0.05):
    """Factory building client ``cid`` purely from ``(seed, cid)``."""

    def factory(cid):
        return FLClient(
            cid, shards[cid], _mlp_factory, ClientConfig(lr=lr),
            seed=derive_rng(7, "virt", cid),
        )

    return factory


def _digest(state):
    digest = hashlib.sha256()
    for key in sorted(state):
        value = np.ascontiguousarray(state[key])
        digest.update(key.encode())
        digest.update(value.tobytes())
    return digest.hexdigest()


def _assert_states_equal(state_a, state_b):
    assert state_a.keys() == state_b.keys()
    for key in state_a:
        assert np.array_equal(state_a[key], state_b[key]), key


def _assert_mutable_states_equal(a, b):
    _assert_states_equal(a.model_state, b.model_state)
    assert a.round_index == b.round_index
    assert a.optimizer_state["lr"] == b.optimizer_state["lr"]
    velocity_a = a.optimizer_state["velocity"]
    velocity_b = b.optimizer_state["velocity"]
    assert velocity_a.keys() == velocity_b.keys()
    for key in velocity_a:
        assert np.array_equal(velocity_a[key], velocity_b[key]), key
    if a.seed_rng is not None or b.seed_rng is not None:
        assert a.seed_rng.bit_generator.state == b.seed_rng.bit_generator.state
    if a.wire_residual is not None or b.wire_residual is not None:
        _assert_states_equal(a.wire_residual, b.wire_residual)
    assert a.extra.keys() == b.extra.keys()
    for key, value in a.extra.items():
        other = b.extra[key]
        if isinstance(value, np.ndarray):
            assert np.array_equal(value, other), key
        elif isinstance(value, dict) and "velocity" in value:
            for pkey in value["velocity"]:
                assert np.array_equal(
                    value["velocity"][pkey], other["velocity"][pkey]
                ), (key, pkey)
        else:
            assert value == other, key


class TestShardAggregation:
    def test_shard_partition_covers_and_balances(self):
        assert shard_partition(10, 3) == [(0, 4), (4, 7), (7, 10)]
        assert shard_partition(4, 1) == [(0, 4)]
        # More shards than members: clamp, never emit an empty shard.
        assert shard_partition(3, 8) == [(0, 1), (1, 2), (2, 3)]
        with pytest.raises(ValueError):
            shard_partition(0, 2)

    @pytest.mark.parametrize("shards", [1, 2, 3, 7])
    def test_sharded_fedavg_is_bitwise_flat(self, shards):
        rng = np.random.default_rng(0)
        states = [
            {"w": rng.normal(size=(4, 3)), "b": rng.normal(size=3)}
            for _ in range(7)
        ]
        weights = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0]
        flat = fedavg(states, weights)
        sharded = ShardAggregator("fedavg", shards=shards)(states, weights)
        _assert_states_equal(flat, sharded)

    def test_sharded_robust_rule_runs_shard_local(self):
        rng = np.random.default_rng(1)
        states = [{"w": rng.normal(size=(3,))} for _ in range(6)]
        merged = ShardAggregator("median", shards=2)(states)
        assert merged.keys() == {"w"}
        assert np.all(np.isfinite(merged["w"]))
        # Region tier: edge -> region -> root still produces a clean state.
        tiered = ShardAggregator("median", shards=4, region_fanout=2)(states)
        assert np.all(np.isfinite(tiered["w"]))

    def test_server_shards_option(self):
        server = FLServer(_mlp_factory)
        server.set_aggregator("fedavg", shards=3)
        assert "sharded" in server.aggregator_name
        with pytest.raises(ValueError):
            FLServer(_mlp_factory).set_aggregator("fedavg", region_fanout=2)

    def test_sharded_simulation_matches_flat(self, tiny_vector_dataset):
        digests = []
        for shards in (1, 3):
            factory = _client_factory(
                _shard_map(tiny_vector_dataset, range(6))
            )
            registry = ClientRegistry(factory, population=6)
            server = FLServer(_mlp_factory)
            if shards > 1:
                server.set_aggregator("fedavg", shards=shards)
            with FederatedSimulation(server, registry=registry) as sim:
                sim.run(2)
            digests.append(_digest(server.global_state()))
            registry.close()
        assert digests[0] == digests[1]


class TestRegistrySemantics:
    def _registry(self, dataset, population=4, **kwargs):
        factory = _client_factory(_shard_map(dataset, range(population)))
        return ClientRegistry(factory, population=population, **kwargs)

    def test_double_checkout_raises(self, tiny_vector_dataset):
        registry = self._registry(tiny_vector_dataset)
        client = registry.checkout(0)
        with pytest.raises(RuntimeError):
            registry.checkout(0)
        registry.release(client)
        registry.checkout(0)  # released -> available again

    def test_release_is_idempotent(self, tiny_vector_dataset):
        registry = self._registry(tiny_vector_dataset)
        client = registry.checkout(1)
        registry.release(client)
        registry.release(client)  # no-op, not an error
        assert registry.store.client_ids() == [1]

    def test_materialize_for_read_leaves_store_untouched(self, tiny_vector_dataset):
        registry = self._registry(tiny_vector_dataset)
        client = registry.checkout(2)
        client.local_update()
        registry.release(client)
        before = registry.store.peek(2).clone()
        reader = registry.materialize_for_read(2)
        reader.local_update()  # training the throwaway copy
        _assert_mutable_states_equal(before, registry.store.peek(2))

    def test_cohort_bounds_live_clients(self, tiny_vector_dataset):
        registry = self._registry(tiny_vector_dataset, population=8)
        server = FLServer(_mlp_factory)
        with FederatedSimulation(
            server, registry=registry, clients_per_round=3, sampling_seed=0
        ) as sim:
            sim.run(3)
        assert registry.max_live <= 3
        assert registry.materialized_total == 9

    def test_sparse_ids_run_and_record(self, tiny_vector_dataset):
        ids = [3, 17, 1_000_003]
        factory = _client_factory(_shard_map(tiny_vector_dataset, ids))
        registry = ClientRegistry(factory, client_ids=ids)
        server = FLServer(_mlp_factory)
        with FederatedSimulation(server, registry=registry) as sim:
            sim.run(2)
            accuracies = sim.evaluate_clients(tiny_vector_dataset)
        assert sim.history.participating_clients() == ids
        assert set(sim.history.train_losses[0]) == set(ids)
        series = sim.history.client_loss_series(1_000_003)
        assert series.shape == (2,)
        assert len(accuracies) == 3
        registry.close()

    def test_evaluate_clients_sample_cap(self, tiny_vector_dataset):
        registry = self._registry(tiny_vector_dataset, population=6)
        server = FLServer(_mlp_factory)
        with FederatedSimulation(server, registry=registry) as sim:
            sim.run(1)
            sampled = sim.evaluate_clients(tiny_vector_dataset, sample=2)
            everyone = sim.evaluate_clients(tiny_vector_dataset, sample=100)
            with pytest.raises(ValueError):
                sim.evaluate_clients(tiny_vector_dataset, sample=0)
        assert len(sampled) == 2
        assert len(everyone) == 6


class TestLiveVirtualIdentity:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_virtual_matches_live_cohorts(self, tiny_vector_dataset, backend):
        population, cohort, rounds = 6, 3, 2
        shards = _shard_map(tiny_vector_dataset, range(population))
        factory = _client_factory(shards)
        results = []
        for virtual in (False, True):
            kwargs = {"num_workers": 2} if backend == "process" else {}
            executor = make_executor(backend=backend, **kwargs)
            server = FLServer(_mlp_factory)
            if virtual:
                sim_kwargs = {"registry": ClientRegistry(factory, population=population)}
            else:
                sim_kwargs = {"clients": [factory(i) for i in range(population)]}
            with FederatedSimulation(
                server,
                executor=executor,
                clients_per_round=cohort,
                sampling_seed=11,
                **sim_kwargs,
            ) as sim:
                sim.run(rounds)
            results.append((_digest(server.global_state()), sim.history.train_losses))
        (live_digest, live_losses), (virtual_digest, virtual_losses) = results
        assert live_digest == virtual_digest
        assert live_losses == virtual_losses


class TestStateStoreBitIdentity:
    def test_lru_spill_rehydrate_roundtrip(self, tiny_vector_dataset, tmp_path):
        """Momentum, RNG streams, and extras survive eviction bitwise."""
        shards = _shard_map(tiny_vector_dataset, range(3))
        factory = _client_factory(shards)
        reference = {}
        store = LRUStateStore(capacity=1, spill_dir=str(tmp_path))
        for cid in range(3):
            client = factory(cid)
            client.local_update()
            state = client.get_mutable_state().clone()
            reference[cid] = state.clone()
            store.put(cid, state)
        assert store.evictions >= 2  # capacity 1 spilled the earlier clients
        assert len(store.spill_manifest()) >= 2
        for cid in range(3):
            _assert_mutable_states_equal(reference[cid], store.pop(cid))
        assert store.rehydrations >= 2
        store.close()

    def _run_virtual(self, dataset, store, rounds=3, codec="none", clients=None):
        ids = range(6)
        factory = clients or _client_factory(_shard_map(dataset, ids))
        registry = ClientRegistry(factory, population=6, store=store)
        executor = make_executor(backend="sequential", codec=codec)
        server = FLServer(_mlp_factory if clients is None else _dual_factory)
        with FederatedSimulation(
            server, registry=registry, executor=executor,
            clients_per_round=3, sampling_seed=5,
        ) as sim:
            sim.run(rounds)
        snapshot = registry.store.snapshot_all()
        digest = _digest(server.global_state())
        registry.close()
        return digest, snapshot

    def test_lru_run_matches_memory_run(self, tiny_vector_dataset, tmp_path):
        memory_digest, memory_states = self._run_virtual(
            tiny_vector_dataset, InMemoryStateStore()
        )
        lru = LRUStateStore(capacity=1, spill_dir=str(tmp_path))
        lru_digest, lru_states = self._run_virtual(tiny_vector_dataset, lru)
        assert memory_digest == lru_digest
        assert memory_states.keys() == lru_states.keys()
        for cid in memory_states:
            _assert_mutable_states_equal(memory_states[cid], lru_states[cid])

    def test_topk_wire_residual_survives_eviction(self, tiny_vector_dataset, tmp_path):
        memory_digest, memory_states = self._run_virtual(
            tiny_vector_dataset, InMemoryStateStore(), codec="topk"
        )
        lru = LRUStateStore(capacity=1, spill_dir=str(tmp_path))
        lru_digest, lru_states = self._run_virtual(
            tiny_vector_dataset, lru, codec="topk"
        )
        assert memory_digest == lru_digest
        assert any(s.wire_residual is not None for s in memory_states.values())
        for cid in memory_states:
            _assert_mutable_states_equal(memory_states[cid], lru_states[cid])

    def test_cip_perturbation_survives_eviction(self, tiny_vector_dataset, tmp_path):
        shards = _shard_map(tiny_vector_dataset, range(6))
        cip = CIPConfig(alpha=0.5, clip_range=None)

        def factory(cid):
            return CIPClient(
                cid, shards[cid], _dual_factory, cip_config=cip,
                config=ClientConfig(lr=0.05), seed=derive_rng(7, "virt-cip", cid),
            )

        memory_digest, memory_states = self._run_virtual(
            tiny_vector_dataset, InMemoryStateStore(), clients=factory
        )
        lru = LRUStateStore(capacity=1, spill_dir=str(tmp_path))
        lru_digest, lru_states = self._run_virtual(
            tiny_vector_dataset, lru, clients=factory
        )
        assert memory_digest == lru_digest
        for cid, state in memory_states.items():
            assert "perturbation_t" in state.extra
            _assert_mutable_states_equal(state, lru_states[cid])

    def test_state_nbytes_counts_arrays(self, tiny_vector_dataset):
        factory = _client_factory(_shard_map(tiny_vector_dataset, range(1)))
        client = factory(0)
        client.local_update()
        nbytes = mutable_state_nbytes(client.get_mutable_state())
        model_bytes = sum(v.nbytes for v in client.model.state_dict().values())
        assert nbytes >= 2 * model_bytes  # weights + momentum at least


class TestVirtualCheckpoint:
    def _build(self, dataset, directory, store=None):
        factory = _client_factory(_shard_map(dataset, range(6)))
        registry = ClientRegistry(
            factory, population=6,
            store=store if store is not None else InMemoryStateStore(),
            spec={"suite": "virt-ckpt"},
        )
        server = FLServer(_mlp_factory)
        return FederatedSimulation(
            server, registry=registry,
            clients_per_round=3, sampling_seed=3,
            checkpoint=CheckpointConfig(directory=str(directory), every=1, keep=0),
        )

    def test_resume_with_spilled_states_is_bit_identical(self, tiny_vector_dataset, tmp_path):
        uninterrupted_dir = tmp_path / "a"
        with self._build(tiny_vector_dataset, uninterrupted_dir) as sim:
            sim.run(4)
        expected = _digest(sim.server.global_state())

        resumed_dir = tmp_path / "b"
        lru = LRUStateStore(capacity=1, spill_dir=str(tmp_path / "spill"))
        with self._build(tiny_vector_dataset, resumed_dir, store=lru) as sim:
            sim.run(2)
        assert lru.spill_manifest()  # the checkpoint had spilled clients
        fresh_lru = LRUStateStore(capacity=1, spill_dir=str(tmp_path / "spill2"))
        with self._build(tiny_vector_dataset, resumed_dir, store=fresh_lru) as sim:
            sim.resume(4)
        assert _digest(sim.server.global_state()) == expected

    def test_live_and_virtual_checkpoints_refuse_to_cross(self, tiny_vector_dataset, tmp_path):
        virtual_dir = tmp_path / "virtual"
        with self._build(tiny_vector_dataset, virtual_dir) as sim:
            sim.run(1)
        factory = _client_factory(_shard_map(tiny_vector_dataset, range(6)))
        live = FederatedSimulation(
            FLServer(_mlp_factory),
            clients=[factory(i) for i in range(6)],
            clients_per_round=3,
            sampling_seed=3,
            checkpoint=CheckpointConfig(directory=str(virtual_dir), every=1),
        )
        with live, pytest.raises(ValueError, match="virtual"):
            live.resume(2)

        live_dir = tmp_path / "live"
        live2 = FederatedSimulation(
            FLServer(_mlp_factory),
            clients=[factory(i) for i in range(6)],
            clients_per_round=3,
            sampling_seed=3,
            checkpoint=CheckpointConfig(directory=str(live_dir), every=1),
        )
        with live2:
            live2.run(1)
        with self._build(tiny_vector_dataset, live_dir) as sim, pytest.raises(
            ValueError, match="live"
        ):
            sim.resume(2)

    def test_spec_digest_mismatch_refused(self, tiny_vector_dataset, tmp_path):
        with self._build(tiny_vector_dataset, tmp_path) as sim:
            sim.run(1)
        factory = _client_factory(_shard_map(tiny_vector_dataset, range(6)))
        other = ClientRegistry(
            factory, population=6, spec={"suite": "different-population"}
        )
        mismatched = FederatedSimulation(
            FLServer(_mlp_factory), registry=other,
            clients_per_round=3, sampling_seed=3,
            checkpoint=CheckpointConfig(directory=str(tmp_path), every=1),
        )
        with mismatched, pytest.raises(ValueError, match="digest"):
            mismatched.resume(2)


class TestChaosUnderVirtualization:
    def test_wire_quarantine_matches_live(self, tiny_vector_dataset):
        """The stateless fault schedule keys on (round, client, attempt), so
        virtualization must reproduce the live run's quarantines and bits."""
        shards = _shard_map(tiny_vector_dataset, range(6))
        factory = _client_factory(shards)
        faults = FaultConfig(wire_corrupt_rate=0.4, seed=13)
        results = []
        for virtual in (False, True):
            executor = make_executor(
                backend="sequential", fault_config=faults, min_participation=0.25
            )
            server = FLServer(_mlp_factory)
            if virtual:
                sim_kwargs = {"registry": ClientRegistry(factory, population=6)}
            else:
                sim_kwargs = {"clients": [factory(i) for i in range(6)]}
            with FederatedSimulation(server, executor=executor, **sim_kwargs) as sim:
                sim.run(3)
            rejected = [m.rejected_clients for m in sim.history.round_metrics]
            results.append((_digest(server.global_state()), rejected))
        (live_digest, live_rejected), (virtual_digest, virtual_rejected) = results
        assert any(live_rejected), "rate 0.4 over 18 deliveries should quarantine"
        assert all(
            reason == "wire_corrupt"
            for per_round in live_rejected
            for reason in per_round.values()
        )
        assert virtual_rejected == live_rejected
        assert virtual_digest == live_digest
