"""Federated-learning clients.

:class:`FLClient` is the standard (no-defense) participant: it clones the
broadcast global model, runs local SGD epochs on its private shard, and
returns its new weights.  Defense clients (CIP in :mod:`repro.core`, DP in
:mod:`repro.defenses`) subclass it and override :meth:`local_update` or the
training objective.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.data.dataset import Dataset
from repro.fl.training import EvalResult, evaluate_model, train_supervised
from repro.nn.layers import Module
from repro.nn.optim import SGD
from repro.nn.serialization import clone_state_dict
from repro.utils.rng import SeedLike, derive_rng

StateDict = Dict[str, np.ndarray]
ModelFactory = Callable[[], Module]


@dataclass
class ClientConfig:
    """Local training hyperparameters (paper Section IV-A defaults)."""

    lr: float = 1e-2
    momentum: float = 0.9
    weight_decay: float = 0.0
    batch_size: int = 32
    local_epochs: int = 1  # paper default: 1 local epoch per round


@dataclass
class ClientUpdate:
    """What a client sends to the server after a round of local training."""

    client_id: int
    state: StateDict
    num_samples: int
    train_loss: float


@dataclass
class ClientMutableState:
    """Everything about a client that evolves across rounds.

    The parallel round executor ships this to a worker process, runs
    :meth:`FLClient.local_update` there, and applies the returned state back
    onto the authoritative client object in the coordinator process — so a
    worker-executed round leaves the client bit-for-bit identical to an
    in-process round.  Heavy immutable pieces (the data shard, the model
    architecture) are shipped once at pool start-up, not here.

    ``extra`` carries subclass state: :class:`repro.core.cip_client.CIPClient`
    stores its secret perturbation and the perturbation optimizer there.

    ``wire_residual`` is the client's error-feedback residual for lossy wire
    codecs (see :class:`repro.fl.communication.TopKCodec`): what previous
    rounds left untransmitted.  It lives here so worker round-trips and
    checkpoints carry it, making compressed runs resume bit-identically.
    """

    model_state: StateDict
    optimizer_state: Dict[str, object]
    round_index: int
    seed_rng: Optional[np.random.Generator] = None
    augment_rng: Optional[np.random.Generator] = None
    extra: Dict[str, object] = field(default_factory=dict)
    wire_residual: Optional[StateDict] = None

    def clone(self) -> "ClientMutableState":
        """A fully independent deep copy of this snapshot.

        :meth:`FLClient.get_mutable_state` clones the array state but keeps
        *live references* to the client's RNG generators (the cheap choice
        for the ship-to-worker path, where pickling isolates them anyway).
        In-process consumers that hold a snapshot across further training —
        the sequential executor's retry rollback, the checkpoint writer —
        must clone it so the client's continued draws cannot mutate it.
        """
        return copy.deepcopy(self)


class FLClient:
    """A benign FL participant training the plain single-channel model.

    Virtualization contract (see :mod:`repro.fl.registry`): a client must
    be fully reconstructible from its constructor arguments plus a
    :class:`ClientMutableState` snapshot.  Everything that evolves across
    rounds has to round-trip through :meth:`get_mutable_state` /
    :meth:`set_mutable_state` — subclasses hook
    :meth:`_extra_mutable_state` / :meth:`_load_extra_state` for their own
    evolving state (e.g. the CIP perturbation) so lazy re-materialization
    in round *k* is bit-identical to an object that lived through rounds
    1..k-1.  State kept only as instance attributes outside the snapshot
    is silently lost when a registry releases the client.
    """

    def __init__(
        self,
        client_id: int,
        dataset: Dataset,
        model_factory: ModelFactory,
        config: Optional[ClientConfig] = None,
        augment: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        seed: SeedLike = None,
    ) -> None:
        self.client_id = client_id
        self.dataset = dataset
        self.config = config or ClientConfig()
        self.augment = augment
        self._seed = seed
        self.model = model_factory()
        self._optimizer = SGD(
            self.model.parameters(),
            lr=self.config.lr,
            momentum=self.config.momentum,
            weight_decay=self.config.weight_decay,
        )
        self._round = 0
        self._wire_residual: Optional[StateDict] = None

    # -- FL protocol -----------------------------------------------------
    def receive_global(self, state: StateDict) -> None:
        """Adopt the server's broadcast weights."""
        self.model.load_state_dict(state)

    def local_update(self) -> ClientUpdate:
        """One round of local training; returns the new local weights."""
        self._round += 1
        losses = self._train_round()
        return ClientUpdate(
            client_id=self.client_id,
            state=clone_state_dict(self.model.state_dict()),
            num_samples=len(self.dataset),
            train_loss=losses[-1],
        )

    def _train_round(self) -> list:
        return train_supervised(
            self.model,
            self.dataset,
            self._optimizer,
            epochs=self.config.local_epochs,
            batch_size=self.config.batch_size,
            seed=derive_rng(self._seed, "round", self._round),
            augment=self.augment,
        )

    # -- state round-trip (parallel execution / checkpointing) -------------
    def get_mutable_state(self) -> ClientMutableState:
        """Snapshot the client state that evolves across rounds.

        Subclasses with extra per-round state (e.g. the CIP perturbation)
        override :meth:`_extra_mutable_state` / :meth:`_load_extra_state`
        rather than this pair.
        """
        seed_rng = self._seed if isinstance(self._seed, np.random.Generator) else None
        return ClientMutableState(
            model_state=clone_state_dict(self.model.state_dict()),
            optimizer_state=self._optimizer.state_dict(),
            round_index=self._round,
            seed_rng=seed_rng,
            augment_rng=getattr(self.augment, "_rng", None),
            extra=self._extra_mutable_state(),
            wire_residual=(
                clone_state_dict(self._wire_residual)
                if self._wire_residual is not None
                else None
            ),
        )

    def set_mutable_state(self, state: ClientMutableState) -> None:
        """Restore a snapshot taken by :meth:`get_mutable_state`."""
        self.model.load_state_dict(state.model_state)
        self._optimizer.load_state_dict(state.optimizer_state)
        self._round = state.round_index
        if state.seed_rng is not None:
            self._seed = state.seed_rng
        if state.augment_rng is not None and self.augment is not None:
            self.augment._rng = state.augment_rng
        self._wire_residual = state.wire_residual
        self._load_extra_state(state.extra)

    def _extra_mutable_state(self) -> Dict[str, object]:
        return {}

    def _load_extra_state(self, extra: Dict[str, object]) -> None:
        pass

    # -- hooks for schedules / evaluation ---------------------------------
    def set_lr(self, lr: float) -> None:
        self._optimizer.set_lr(lr)

    def evaluate(self, dataset: Dataset) -> EvalResult:
        """Evaluate the client's current model on an arbitrary dataset."""
        return evaluate_model(self.model, dataset, batch_size=self.config.batch_size)

    def evaluate_train(self) -> EvalResult:
        return self.evaluate(self.dataset)
