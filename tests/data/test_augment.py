"""Augmentation transforms (the CIFAR-AUG pipeline)."""

import numpy as np
import pytest

from repro.data.augment import (
    AugmentationPipeline,
    center_crop,
    cifar_aug_pipeline,
    random_crop,
    random_horizontal_flip,
    resize,
)


RNG = np.random.default_rng(0)
IMAGES = RNG.random((4, 3, 12, 12))


class TestResize:
    def test_identity(self):
        np.testing.assert_array_equal(resize(IMAGES, 12, 12), IMAGES)

    def test_upscale_shape(self):
        out = resize(IMAGES, 16, 20)
        assert out.shape == (4, 3, 16, 20)

    def test_preserves_constant_images(self):
        const = np.full((1, 1, 6, 6), 0.37)
        out = resize(const, 11, 11)
        np.testing.assert_allclose(out, 0.37)

    def test_preserves_range(self):
        out = resize(IMAGES, 17, 17)
        assert out.min() >= IMAGES.min() - 1e-9
        assert out.max() <= IMAGES.max() + 1e-9

    def test_downscale_averages(self):
        # 2x2 checkerboard down to 1x1 equals its mean.
        img = np.array([[[[0.0, 1.0], [1.0, 0.0]]]])
        out = resize(img, 1, 1)
        np.testing.assert_allclose(out, 0.5)


class TestCrops:
    def test_random_crop_shape_and_content(self):
        rng = np.random.default_rng(1)
        out = random_crop(IMAGES, 8, rng)
        assert out.shape == (4, 3, 8, 8)
        # each crop is a contiguous window of the source
        found = False
        for oy in range(5):
            for ox in range(5):
                if np.allclose(out[0], IMAGES[0, :, oy : oy + 8, ox : ox + 8]):
                    found = True
        assert found

    def test_crop_too_large(self):
        rng = np.random.default_rng(2)
        with pytest.raises(ValueError):
            random_crop(IMAGES, 13, rng)

    def test_center_crop(self):
        out = center_crop(IMAGES, 8)
        np.testing.assert_array_equal(out, IMAGES[:, :, 2:10, 2:10])


class TestFlip:
    def test_flip_probability_one(self):
        rng = np.random.default_rng(3)
        out = random_horizontal_flip(IMAGES, rng, probability=1.0)
        np.testing.assert_array_equal(out, IMAGES[:, :, :, ::-1])

    def test_flip_probability_zero(self):
        rng = np.random.default_rng(4)
        out = random_horizontal_flip(IMAGES, rng, probability=0.0)
        np.testing.assert_array_equal(out, IMAGES)

    def test_flip_does_not_mutate_input(self):
        rng = np.random.default_rng(5)
        snapshot = IMAGES.copy()
        random_horizontal_flip(IMAGES, rng, probability=1.0)
        np.testing.assert_array_equal(IMAGES, snapshot)


class TestPipeline:
    def test_empty_pipeline_is_identity(self):
        pipeline = AugmentationPipeline([])
        np.testing.assert_array_equal(pipeline(IMAGES), IMAGES)
        assert len(pipeline) == 0

    def test_cifar_aug_pipeline_round_trip_shape(self):
        pipeline = cifar_aug_pipeline(base_size=12, upscale=14, crop=12, seed=0)
        out = pipeline(IMAGES)
        assert out.shape == IMAGES.shape
        assert len(pipeline) == 3

    def test_cifar_aug_pipeline_validates_crop(self):
        with pytest.raises(ValueError):
            cifar_aug_pipeline(base_size=12, upscale=16, crop=10)

    def test_pipeline_is_stochastic_but_seeded(self):
        a = cifar_aug_pipeline(12, 14, 12, seed=5)(IMAGES)
        b = cifar_aug_pipeline(12, 14, 12, seed=5)(IMAGES)
        np.testing.assert_array_equal(a, b)
        c = cifar_aug_pipeline(12, 14, 12, seed=6)(IMAGES)
        assert not np.allclose(a, c)
