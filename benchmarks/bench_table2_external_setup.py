"""[Table II] External-adversary setup: per-dataset legacy accuracies.

Paper regimes: CIFAR-100 overfit (test 0.323), CH-MNIST well trained
(0.899), Purchase-50 high accuracy (0.755), CIFAR-AUG in between (0.434).
Shape checks: the synthetic stand-ins land in the same regimes — CIFAR-100
has the largest train/test gap, CH-MNIST and Purchase-50 generalize well.
"""

from benchmarks.conftest import run_and_report


def test_table2_external_setup(benchmark, profile):
    result = run_and_report(benchmark, "table2", profile)
    rows = {row["dataset"]: row for row in result.rows}
    assert set(rows) == {"cifar100", "cifar_aug", "chmnist", "purchase50"}
    gap = lambda r: r["train_acc"] - r["test_acc"]  # noqa: E731
    # CIFAR-100 is the overfit regime
    assert gap(rows["cifar100"]) > 0.4
    # CH-MNIST is well trained
    assert rows["chmnist"]["test_acc"] > 0.75
    # augmentation reduces the train/test gap relative to plain CIFAR-100
    assert gap(rows["cifar_aug"]) < gap(rows["cifar100"])
