"""Model aggregation rules.

The paper uses the averaging aggregation of McMahan et al. (FedAvg): the
server replaces the global weights by the sample-size-weighted mean of the
clients' local weights.  Aggregation operates on state dicts so it is
architecture-agnostic; BatchNorm running statistics are averaged the same
way, which is the standard FedAvg-with-BN behaviour.

FedAvg trusts every update, so a single Byzantine client controls the
average.  The robust alternatives bound that influence:

* :func:`coordinate_median` — coordinate-wise median; a minority of
  arbitrarily-corrupted updates cannot move any coordinate past the honest
  majority's values.
* :func:`trimmed_mean` — coordinate-wise mean after trimming the
  ``trim_fraction`` most extreme values from each end.
* :func:`norm_clipped_fedavg` — FedAvg over per-update deltas clipped to a
  bounded L2 norm, capping how far any one client can drag the model.
* :func:`krum` / :func:`multi_krum` — select the update(s) closest to their
  ``n - f - 2`` nearest neighbours (Blanchard et al.), discarding geometric
  outliers entirely.

All aggregators share a signature ``(states, weights=None, *,
reference=None, ...)`` so the server can swap them via
:func:`make_aggregator`.  The robust rules are *unweighted* by design —
honoring attacker-controlled ``num_samples`` weights would hand back the
influence they exist to bound — and every aggregator preserves the incoming
floating dtype (a ``wire_dtype=float32`` run must not round-trip its
parameters through an unintended ``float64`` upcast).

The robust rules additionally accept a keyword-only ``staleness`` sequence:
the async engine's per-update decay weights ``s(lag)``.  Unlike
``num_samples`` these are **server-derived** — the server computes the lag
from its own version counter, an attacker cannot inflate them — so honoring
them is safe, and it closes a real gap: a stale effective state sits close
to the current global (its delta was decayed toward zero), which the
selection geometry of median/Krum would otherwise read as *central*, i.e.
maximally trustworthy.  Staleness-aware selection discounts such updates
instead: the weighted median/trimmed-mean treat ``s`` as voting mass, and
Krum penalizes scores by ``1 / s²`` (distances scale quadratically).  When
``staleness`` is ``None`` or every weight is ``1.0`` — every synchronous
round, and async at lag 0 — the rules dispatch to the plain code path and
degenerate bitwise to the sync behavior.

Computation-cost note: ``median``/``trimmed_mean`` sort ``O(n·d log n)``,
``krum`` computes all pairwise distances ``O(n²·d)`` — see
``benchmarks/bench_robust_agg.py`` for measured costs.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import AGGREGATORS, STALENESS_POLICIES

StateDict = Dict[str, np.ndarray]
#: Uniform aggregator signature used by the server (see make_aggregator).
Aggregator = Callable[..., StateDict]

__all__ = [
    "AGGREGATORS",
    "STALENESS_POLICIES",
    "staleness_weight",
    "fedavg",
    "coordinate_median",
    "trimmed_mean",
    "norm_clipped_fedavg",
    "krum",
    "multi_krum",
    "make_aggregator",
    "shard_partition",
    "ShardAggregator",
    "state_delta",
    "apply_delta",
    "flatten_state",
]


def _check_compatible(states: Sequence[StateDict]) -> None:
    """All state dicts must agree on keys *and* per-key shapes."""
    if not states:
        raise ValueError("aggregation needs at least one state dict")
    first = states[0]
    keys = set(first)
    for state in states[1:]:
        if set(state) != keys:
            raise ValueError("state dicts have mismatched keys")
        for key in first:
            if state[key].shape != first[key].shape:
                raise ValueError(
                    f"state dicts have mismatched shapes for key {key!r}: "
                    f"{first[key].shape} vs {state[key].shape}"
                )


def _normalized_weights(
    weights: Optional[Sequence[float]], count: int
) -> np.ndarray:
    if weights is None:
        return np.full(count, 1.0 / count)
    weights_arr = np.asarray(weights, dtype=np.float64)
    if len(weights_arr) != count:
        raise ValueError("one weight per state dict required")
    if (weights_arr < 0).any() or weights_arr.sum() <= 0:
        raise ValueError("weights must be non-negative and sum to > 0")
    return weights_arr / weights_arr.sum()


def _staleness_array(
    staleness: Optional[Sequence[float]], count: int
) -> Optional[np.ndarray]:
    """Validate staleness weights; ``None`` means "all fresh, plain rule".

    Returns ``None`` both for absent weights and for the all-ones case so
    callers dispatch to the unweighted code path — the bitwise lag-0
    degeneration guarantee.
    """
    if staleness is None:
        return None
    arr = np.asarray(staleness, dtype=np.float64)
    if len(arr) != count:
        raise ValueError("one staleness weight per state dict required")
    if (arr <= 0).any() or (arr > 1.0 + 1e-12).any():
        raise ValueError("staleness weights must be in (0, 1]")
    if np.all(arr == 1.0):
        return None
    return arr


def _sorted_with_weights(
    stacked: np.ndarray, weights: np.ndarray
) -> tuple:
    """Sort a ``(n, ...)`` stack along axis 0, carrying per-row weights."""
    order = np.argsort(stacked, axis=0, kind="stable")
    sorted_vals = np.take_along_axis(stacked, order, axis=0)
    broadcast = np.broadcast_to(
        weights.reshape((-1,) + (1,) * (stacked.ndim - 1)), stacked.shape
    )
    sorted_weights = np.take_along_axis(np.ascontiguousarray(broadcast), order, axis=0)
    return sorted_vals, sorted_weights


def _weighted_median(stacked: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Coordinate-wise weighted median of a ``(n, ...)`` stack.

    Per coordinate: sort the values, accumulate the (staleness) weights,
    and pick the first value where the cumulative mass reaches half the
    total; an exact half-mass tie averages with the next value, matching
    ``np.median``'s even-``n`` convention under uniform weights.
    """
    sorted_vals, sorted_weights = _sorted_with_weights(stacked, weights)
    cum = np.cumsum(sorted_weights, axis=0)
    half = 0.5 * cum[-1]
    index = (cum >= half).argmax(axis=0)
    lower = np.take_along_axis(sorted_vals, index[None], axis=0)[0]
    mass_at = np.take_along_axis(cum, index[None], axis=0)[0]
    tie = np.isclose(mass_at, half, rtol=1e-12, atol=0.0)
    upper_index = np.minimum(index + 1, stacked.shape[0] - 1)
    upper = np.take_along_axis(sorted_vals, upper_index[None], axis=0)[0]
    return np.where(tie, 0.5 * (lower + upper), lower)


def _cast_back(value: np.ndarray, like: np.ndarray) -> np.ndarray:
    """Return ``value`` in ``like``'s dtype when it is floating.

    Aggregation math runs in float64 for accuracy; the result must come back
    in the parameters' own dtype so e.g. a float32 federation stays float32.
    Non-floating arrays keep the float64 mean (an integer mean is generally
    not representable in the input dtype).
    """
    if np.issubdtype(like.dtype, np.floating):
        return value.astype(like.dtype)
    return value


def fedavg(states: Sequence[StateDict], weights: Optional[Sequence[float]] = None) -> StateDict:
    """Weighted average of state dicts.

    ``weights`` default to uniform; they are normalized internally, so
    callers may pass raw sample counts.  The merged arrays keep the incoming
    floating dtype.
    """
    _check_compatible(states)
    weights_arr = _normalized_weights(weights, len(states))
    merged: StateDict = {}
    for key in states[0]:
        acc = np.zeros(states[0][key].shape, dtype=np.float64)
        for w, state in zip(weights_arr, states):
            acc += w * state[key].astype(np.float64, copy=False)
        merged[key] = _cast_back(acc, states[0][key])
    return merged


def coordinate_median(
    states: Sequence[StateDict],
    weights: Optional[Sequence[float]] = None,
    *,
    reference: Optional[StateDict] = None,
    staleness: Optional[Sequence[float]] = None,
) -> StateDict:
    """Coordinate-wise median of the client states.

    Robust to up to ``(n - 1) // 2`` arbitrarily-corrupted updates per
    coordinate.  ``weights`` and ``reference`` are ignored (accepted for
    signature uniformity): a robust rule must not honor attacker-controlled
    sample counts.  For two states the median equals the unweighted mean.

    ``staleness`` (server-derived ``s(lag)`` weights, see the module
    docstring) switches to the *weighted* median: stale updates carry less
    voting mass per coordinate.  ``None`` or all-ones is the plain
    ``np.median``, bitwise.
    """
    _check_compatible(states)
    staleness_arr = _staleness_array(staleness, len(states))
    merged: StateDict = {}
    for key in states[0]:
        stacked = np.stack(
            [state[key].astype(np.float64, copy=False) for state in states]
        )
        if staleness_arr is None:
            merged[key] = _cast_back(np.median(stacked, axis=0), states[0][key])
        else:
            merged[key] = _cast_back(
                _weighted_median(stacked, staleness_arr), states[0][key]
            )
    return merged


def trimmed_mean(
    states: Sequence[StateDict],
    weights: Optional[Sequence[float]] = None,
    *,
    trim_fraction: float = 0.1,
    reference: Optional[StateDict] = None,
    staleness: Optional[Sequence[float]] = None,
) -> StateDict:
    """Coordinate-wise mean after trimming the extremes.

    Per coordinate, the ``floor(trim_fraction * n)`` smallest and largest
    values are dropped and the rest averaged (unweighted; see
    :func:`coordinate_median` for why).  ``trim_fraction=0`` degenerates to
    the plain mean.

    With ``staleness`` the surviving values are averaged weighted by their
    update's ``s(lag)`` — trimming is unchanged (positional, per
    coordinate), but stale survivors pull the mean less.  ``None`` or
    all-ones is the plain trimmed mean, bitwise.
    """
    _check_compatible(states)
    if not 0.0 <= trim_fraction < 0.5:
        raise ValueError("trim_fraction must be in [0, 0.5)")
    n = len(states)
    k = int(trim_fraction * n)
    if n - 2 * k < 1:
        raise ValueError(
            f"trim_fraction={trim_fraction:g} trims all {n} updates; "
            "need at least one survivor per coordinate"
        )
    staleness_arr = _staleness_array(staleness, n)
    merged: StateDict = {}
    for key in states[0]:
        stacked = np.stack(
            [state[key].astype(np.float64, copy=False) for state in states]
        )
        if staleness_arr is None:
            trimmed = np.sort(stacked, axis=0)[k : n - k] if k else stacked
            merged[key] = _cast_back(trimmed.mean(axis=0), states[0][key])
            continue
        sorted_vals, sorted_weights = _sorted_with_weights(stacked, staleness_arr)
        surviving_vals = sorted_vals[k : n - k] if k else sorted_vals
        surviving_weights = sorted_weights[k : n - k] if k else sorted_weights
        weighted = (surviving_vals * surviving_weights).sum(axis=0)
        merged[key] = _cast_back(
            weighted / surviving_weights.sum(axis=0), states[0][key]
        )
    return merged


def norm_clipped_fedavg(
    states: Sequence[StateDict],
    weights: Optional[Sequence[float]] = None,
    *,
    reference: Optional[StateDict] = None,
    clip_norm: Optional[float] = None,
) -> StateDict:
    """FedAvg over per-update deltas clipped to a bounded L2 norm.

    Each update's delta from ``reference`` (the broadcast global state) is
    scaled down to at most ``clip_norm`` before the weighted average, so no
    single client can move the model further than the bound.  ``clip_norm=
    None`` clips at the round's *median* delta norm — scale-free, and a
    boosted replacement attack is cut to a typical honest magnitude.
    """
    _check_compatible(states)
    if reference is None:
        raise ValueError("norm_clipped_fedavg requires the reference (global) state")
    if clip_norm is not None and clip_norm <= 0:
        raise ValueError("clip_norm must be positive")
    _check_compatible([states[0], reference])
    weights_arr = _normalized_weights(weights, len(states))
    deltas = [
        {
            key: state[key].astype(np.float64, copy=False)
            - reference[key].astype(np.float64, copy=False)
            for key in state
        }
        for state in states
    ]
    norms = np.array([np.linalg.norm(flatten_state(delta)) for delta in deltas])
    bound = float(np.median(norms)) if clip_norm is None else float(clip_norm)
    factors = np.ones(len(states))
    positive = norms > 0
    factors[positive] = np.minimum(1.0, bound / norms[positive])
    merged: StateDict = {}
    for key in states[0]:
        acc = reference[key].astype(np.float64, copy=False).copy()
        for w, factor, delta in zip(weights_arr, factors, deltas):
            acc += w * factor * delta[key]
        merged[key] = _cast_back(acc, states[0][key])
    return merged


def _krum_scores(states: Sequence[StateDict], num_byzantine: Optional[int]) -> np.ndarray:
    """Krum score per state: sum of its ``n - f - 2`` smallest squared
    distances to the other states (lower is better)."""
    n = len(states)
    f = (max(0, (n - 3) // 2)) if num_byzantine is None else int(num_byzantine)
    if f < 0:
        raise ValueError("num_byzantine must be non-negative")
    if f > max(0, n - 3):
        raise ValueError(
            f"krum with {n} updates tolerates at most f={max(0, n - 3)} "
            f"Byzantine clients (needs n >= f + 3), got f={f}"
        )
    flat = np.stack([flatten_state(state).astype(np.float64) for state in states])
    # Pairwise squared distances via the Gram expansion (O(n^2 d)).
    squared_norms = np.einsum("ij,ij->i", flat, flat)
    distances = squared_norms[:, None] + squared_norms[None, :] - 2.0 * flat @ flat.T
    np.fill_diagonal(distances, np.inf)
    distances = np.maximum(distances, 0.0)
    neighbors = max(0, n - f - 2)
    if neighbors == 0:
        return np.zeros(n)
    sorted_distances = np.sort(distances, axis=1)
    return sorted_distances[:, :neighbors].sum(axis=1)


def krum(
    states: Sequence[StateDict],
    weights: Optional[Sequence[float]] = None,
    *,
    num_byzantine: Optional[int] = None,
    reference: Optional[StateDict] = None,
    staleness: Optional[Sequence[float]] = None,
) -> StateDict:
    """Krum (Blanchard et al.): adopt the single most central update.

    ``num_byzantine`` is the assumed Byzantine count ``f``; ``None`` uses
    the maximal tolerable ``f = (n - 3) // 2``.  ``weights``/``reference``
    are ignored.

    With ``staleness`` each update's score is penalized by ``1 / s²``
    (squared, because Krum scores are sums of *squared* distances), so a
    decayed-toward-global stale update cannot win on artificial centrality
    over a fresh honest one.  ``None``/all-ones selects exactly as plain
    Krum.
    """
    _check_compatible(states)
    scores = _krum_scores(states, num_byzantine)
    staleness_arr = _staleness_array(staleness, len(states))
    if staleness_arr is not None:
        scores = scores / np.square(staleness_arr)
    winner = int(np.argmin(scores))
    return {key: value.copy() for key, value in states[winner].items()}


def multi_krum(
    states: Sequence[StateDict],
    weights: Optional[Sequence[float]] = None,
    *,
    num_byzantine: Optional[int] = None,
    num_selected: Optional[int] = None,
    reference: Optional[StateDict] = None,
    staleness: Optional[Sequence[float]] = None,
) -> StateDict:
    """Multi-Krum: average the ``m`` best-scored updates.

    ``num_selected=None`` uses ``m = max(1, n - f - 2)``, the selection-set
    bound of the Krum paper.  Selected updates are averaged *unweighted*.

    With ``staleness`` the selection scores carry the same ``1 / s²``
    penalty as :func:`krum` and the selected updates are averaged weighted
    by ``s`` — a fresh selection counts more than a stale one.
    ``None``/all-ones is plain Multi-Krum, bitwise.
    """
    _check_compatible(states)
    scores = _krum_scores(states, num_byzantine)
    n = len(states)
    staleness_arr = _staleness_array(staleness, n)
    if staleness_arr is not None:
        scores = scores / np.square(staleness_arr)
    f = (max(0, (n - 3) // 2)) if num_byzantine is None else int(num_byzantine)
    m = max(1, n - f - 2) if num_selected is None else int(num_selected)
    if not 1 <= m <= n:
        raise ValueError(f"num_selected must be in [1, {n}]")
    selected = np.argsort(scores, kind="stable")[:m]
    if staleness_arr is None:
        return fedavg([states[i] for i in selected])
    return fedavg(
        [states[i] for i in selected], weights=[staleness_arr[i] for i in selected]
    )


def make_aggregator(
    name: str,
    *,
    trim_fraction: float = 0.1,
    clip_norm: Optional[float] = None,
    num_byzantine: Optional[int] = None,
) -> Aggregator:
    """Bind an aggregator name and its options into a uniform callable.

    The result accepts ``(states, weights=None, reference=None,
    staleness=None)`` — the server's calling convention — with the
    rule-specific options closed over.  The selection rules pass
    ``staleness`` through; ``fedavg`` and ``norm_clip`` ignore it, because
    the async engine already lag-discounts the *effective states* they
    average (weighting again would double-discount).  Unknown names raise
    ``ValueError`` (valid names: ``AGGREGATORS``).
    """
    if name == "fedavg":
        return lambda states, weights=None, reference=None, staleness=None: fedavg(
            states, weights
        )
    if name == "median":
        return (
            lambda states, weights=None, reference=None, staleness=None:
            coordinate_median(states, staleness=staleness)
        )
    if name == "trimmed_mean":
        return (
            lambda states, weights=None, reference=None, staleness=None:
            trimmed_mean(states, trim_fraction=trim_fraction, staleness=staleness)
        )
    if name == "norm_clip":
        return (
            lambda states, weights=None, reference=None, staleness=None:
            norm_clipped_fedavg(
                states, weights, reference=reference, clip_norm=clip_norm
            )
        )
    if name == "krum":
        return lambda states, weights=None, reference=None, staleness=None: krum(
            states, num_byzantine=num_byzantine, staleness=staleness
        )
    if name == "multi_krum":
        return lambda states, weights=None, reference=None, staleness=None: multi_krum(
            states, num_byzantine=num_byzantine, staleness=staleness
        )
    raise ValueError(f"unknown aggregator {name!r}; expected one of {AGGREGATORS}")


def shard_partition(count: int, shards: int) -> List[tuple]:
    """Contiguous, balanced ``(start, stop)`` bounds over ``count`` members.

    The first ``count % shards`` shards carry one extra member; ``shards``
    beyond ``count`` clamps to one member per shard.  Contiguity in the
    *canonical cohort order* (the participant order the server sees) is the
    property the sharded FedAvg bit-identity rests on: every member keeps
    its global fold position.
    """
    if count < 1:
        raise ValueError("shard_partition needs at least one member")
    if shards < 1:
        raise ValueError("shards must be at least 1")
    shards = min(shards, count)
    base, extra = divmod(count, shards)
    bounds: List[tuple] = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


class ShardAggregator:
    """Hierarchical (edge → region → root) aggregation over cohort shards.

    Models the cross-device topology where edge aggregators each serve a
    contiguous slice of the sampled cohort and forward a single result
    upward.  The arithmetic depends on the rule:

    * ``rule="fedavg"`` — an **ordered continuation fold**: the float64
      accumulator threads through the shards in canonical cohort order, so
      each edge node continues exactly where the previous one stopped.  The
      resulting float sequence per coordinate is *identical* to flat
      :func:`fedavg`'s left fold — bit-identical by construction, not by
      hoping float addition associates (it does not).  This matches a real
      chain/ring of edge aggregators each folding its members into the
      running partial before passing it on.
    * robust rules (``median``/``trimmed_mean``/``krum``/``multi_krum``/
      ``norm_clip``) — **shard-local semantics**: each edge shard applies
      the rule to its own members, producing one representative; the root
      (optionally via a region tier of ``region_fanout`` shards each)
      applies the same rule over the representatives.  Breakdown points are
      therefore *per shard*: a shard whose own Byzantine fraction exceeds
      the rule's tolerance is lost even if the global fraction is fine, and
      conversely a poisoned minority confined to one shard is contained at
      that shard's edge.  Representative weights at upper tiers are the
      shard's total sample mass; staleness weights apply at the edge tier
      only (upper tiers see already-discounted representatives and treating
      them as stale again would double-discount).

    The instance is a drop-in :data:`Aggregator` — ``(states, weights=None,
    *, reference=None, staleness=None)`` — so ``FLServer.set_aggregator``
    accepts it like any registry rule; ``__name__`` reads
    ``"sharded_<rule>"`` for telemetry.
    """

    def __init__(
        self,
        rule: str = "fedavg",
        shards: int = 2,
        region_fanout: Optional[int] = None,
        *,
        trim_fraction: float = 0.1,
        clip_norm: Optional[float] = None,
        num_byzantine: Optional[int] = None,
    ) -> None:
        if rule not in AGGREGATORS:
            raise ValueError(f"unknown rule {rule!r}; expected one of {AGGREGATORS}")
        if shards < 1:
            raise ValueError("shards must be at least 1")
        if region_fanout is not None and region_fanout < 2:
            raise ValueError("region_fanout must be at least 2")
        self.rule = rule
        self.shards = int(shards)
        self.region_fanout = None if region_fanout is None else int(region_fanout)
        self.__name__ = f"sharded_{rule}"
        self._edge_rule = (
            None
            if rule == "fedavg"
            else make_aggregator(
                rule,
                trim_fraction=trim_fraction,
                clip_norm=clip_norm,
                num_byzantine=num_byzantine,
            )
        )

    def __call__(
        self,
        states: Sequence[StateDict],
        weights: Optional[Sequence[float]] = None,
        *,
        reference: Optional[StateDict] = None,
        staleness: Optional[Sequence[float]] = None,
    ) -> StateDict:
        _check_compatible(states)
        if self.rule == "fedavg":
            return self._fedavg_tree(states, weights)
        return self._robust_tree(states, weights, reference, staleness)

    def _fedavg_tree(
        self, states: Sequence[StateDict], weights: Optional[Sequence[float]]
    ) -> StateDict:
        # Normalization uses the *cohort-wide* weight total (each edge node
        # knows the global sum — one scalar broadcast), then the accumulator
        # threads through the shards in order.  Same multiplies, same adds,
        # same order as flat fedavg => bitwise-equal result.
        bounds = shard_partition(len(states), self.shards)
        weights_arr = _normalized_weights(weights, len(states))
        merged: StateDict = {}
        for key in states[0]:
            acc = np.zeros(states[0][key].shape, dtype=np.float64)
            for start, stop in bounds:
                for w, state in zip(weights_arr[start:stop], states[start:stop]):
                    acc += w * state[key].astype(np.float64, copy=False)
            merged[key] = _cast_back(acc, states[0][key])
        return merged

    def _reduce_tier(
        self,
        states: Sequence[StateDict],
        weights: Optional[Sequence[float]],
        reference: Optional[StateDict],
        staleness: Optional[Sequence[float]],
        shards: int,
    ) -> tuple:
        """Apply the rule shard-locally; return (representatives, masses)."""
        bounds = shard_partition(len(states), shards)
        representatives: List[StateDict] = []
        masses: List[float] = []
        for start, stop in bounds:
            members = list(states[start:stop])
            member_weights = (
                None if weights is None else list(weights[start:stop])
            )
            member_staleness = (
                None if staleness is None else list(staleness[start:stop])
            )
            representatives.append(
                self._edge_rule(
                    members,
                    member_weights,
                    reference=reference,
                    staleness=member_staleness,
                )
            )
            masses.append(
                float(sum(member_weights))
                if member_weights is not None
                else float(stop - start)
            )
        return representatives, masses

    def _robust_tree(
        self,
        states: Sequence[StateDict],
        weights: Optional[Sequence[float]],
        reference: Optional[StateDict],
        staleness: Optional[Sequence[float]],
    ) -> StateDict:
        # Edge tier: the only tier that sees raw member updates (and hence
        # the only one staleness weights apply to).
        representatives, masses = self._reduce_tier(
            states, weights, reference, staleness, self.shards
        )
        # Optional region tier between edge and root.
        if (
            self.region_fanout is not None
            and len(representatives) > self.region_fanout
        ):
            regions = math.ceil(len(representatives) / self.region_fanout)
            representatives, masses = self._reduce_tier(
                representatives, masses, reference, None, regions
            )
        if len(representatives) == 1:
            return representatives[0]
        return self._edge_rule(
            representatives, masses, reference=reference, staleness=None
        )


def state_delta(new: StateDict, old: StateDict) -> StateDict:
    """Per-parameter update ``new - old`` (what a gradient-leakage adversary sees)."""
    _check_compatible([new, old])
    return {key: new[key] - old[key] for key in new}


def apply_delta(base: StateDict, delta: StateDict, scale: float = 1.0) -> StateDict:
    """Return ``base + scale * delta``."""
    _check_compatible([base, delta])
    return {key: base[key] + scale * delta[key] for key in base}


def staleness_weight(
    lag: int,
    policy: str = "polynomial",
    alpha: float = 0.5,
    hinge: int = 4,
) -> float:
    """Down-weight for an async update whose base model is ``lag`` versions old.

    FedAsync/FedBuff-style staleness decay ``s(lag)``; every policy satisfies
    ``s(0) == 1``, ``s(lag) in (0, 1]``, and monotone non-increasing in lag
    (properties pinned by ``tests/fl/test_async_engine.py``):

    * ``constant`` — ``1`` regardless of lag (FedBuff's unweighted buffer).
    * ``polynomial`` — ``(1 + lag) ** -alpha`` (Xie et al., FedAsync).
    * ``hinge`` — ``1`` while ``lag <= hinge``, then
      ``1 / (alpha * (lag - hinge) + 1)``.
    """
    if lag < 0:
        raise ValueError("lag must be non-negative")
    if policy not in STALENESS_POLICIES:
        raise ValueError(f"policy must be one of {STALENESS_POLICIES}")
    if policy == "constant":
        return 1.0
    if policy == "polynomial":
        return float((1.0 + lag) ** -alpha)
    if lag <= hinge:
        return 1.0
    return float(1.0 / (alpha * (lag - hinge) + 1.0))


def flatten_state(state: StateDict) -> np.ndarray:
    """Concatenate all arrays (sorted by key) into one vector.

    Used by parameter-based attacks, the Krum distance geometry, update
    screening, and by tests asserting aggregation linearity.
    """
    return np.concatenate([state[key].reshape(-1) for key in sorted(state)])
