"""The FL parameter server.

Holds the canonical global model, aggregates client updates (FedAvg by
default, or one of the robust rules in :mod:`repro.fl.aggregation`), and
exposes a ``broadcast_hook`` so the malicious-server attacks of Nasr et al.
(see :mod:`repro.fl.malicious`) can tamper with what a victim client receives
without changing the honest code path.

Against *malicious clients* the server has two optional defenses that
compose:

* **update screening** (:mod:`repro.fl.robust`) — every incoming state dict
  is validated against the round's broadcast state before aggregation;
  quarantined clients count against the ``min_participation`` quorum and
  the report lands in :attr:`FLServer.last_screening` for telemetry;
* **robust aggregation** — the ``aggregator`` knob swaps FedAvg for
  coordinate-wise median, trimmed mean, norm-clipped FedAvg, or
  Krum/Multi-Krum, bounding a Byzantine minority's influence even when it
  slips past screening.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional, Sequence, Union

import numpy as np

from repro.core.config import ScreeningConfig
from repro.fl.aggregation import Aggregator, make_aggregator
from repro.fl.client import ClientUpdate, ModelFactory
from repro.fl.robust import ScreeningReport, screen_updates
from repro.nn.layers import Module
from repro.nn.serialization import clone_state_dict

StateDict = Dict[str, np.ndarray]
BroadcastHook = Callable[[int, int, StateDict], StateDict]


class FLServer:
    """Parameter server with pluggable (optionally Byzantine-robust)
    aggregation and optional update screening.

    ``aggregator`` is a name from :data:`repro.core.config.AGGREGATORS`
    (options via ``aggregator_options``, see
    :func:`repro.fl.aggregation.make_aggregator`) or an already-bound
    callable ``(states, weights=None, reference=None) -> StateDict``.
    ``screening=None`` (default) trusts every update, preserving the paper's
    behaviour.
    """

    def __init__(
        self,
        model_factory: ModelFactory,
        aggregator: Union[str, Aggregator] = "fedavg",
        aggregator_options: Optional[Dict[str, object]] = None,
        screening: Optional[ScreeningConfig] = None,
    ) -> None:
        self.model: Module = model_factory()
        self._round = 0
        self.broadcast_hook: Optional[BroadcastHook] = None
        self.screening = screening
        #: Screening outcome of the most recent :meth:`aggregate` call
        #: (``None`` when screening is disabled); consumed by the
        #: simulation's round telemetry.
        self.last_screening: Optional[ScreeningReport] = None
        self.set_aggregator(aggregator, **(aggregator_options or {}))

    def set_aggregator(
        self, aggregator: Union[str, Aggregator], **options: object
    ) -> None:
        """Swap the aggregation rule (by registry name or bound callable)."""
        if callable(aggregator):
            if options:
                raise ValueError("options only apply to aggregator names")
            self.aggregator_name = getattr(aggregator, "__name__", "custom")
            self._aggregate = aggregator
        else:
            self.aggregator_name = aggregator
            self._aggregate = make_aggregator(aggregator, **options)

    @property
    def round(self) -> int:
        return self._round

    def global_state(self) -> StateDict:
        return clone_state_dict(self.model.state_dict())

    def broadcast(self, client_id: int) -> StateDict:
        """State sent to one client this round (hook may tamper with it)."""
        state = self.global_state()
        if self.broadcast_hook is not None:
            state = self.broadcast_hook(self._round, client_id, state)
        return state

    def aggregate(
        self,
        updates: Sequence[ClientUpdate],
        expected_participants: Optional[int] = None,
        min_participation: float = 1.0,
    ) -> StateDict:
        """Aggregate the round's client updates into the global model.

        The update set may be a *subset* of the round's selected clients
        (fault-tolerant rounds drop stragglers and crashed clients); FedAvg
        re-weights the survivors by ``num_samples``, so partial aggregation
        stays a correctly-weighted average.  With screening enabled, updates
        are validated against this round's broadcast state first and
        quarantined clients are excluded.  When ``expected_participants`` is
        given, the server additionally enforces the ``min_participation``
        quorum over the *accepted* set — both benign drops and adversarial
        quarantines count against it.
        """
        if not updates:
            raise ValueError("no updates to aggregate")
        if not 0.0 < min_participation <= 1.0:
            raise ValueError("min_participation must be in (0, 1]")
        reference = self.global_state()
        if self.screening is not None:
            self.last_screening = screen_updates(updates, reference, self.screening)
            accepted = self.last_screening.accepted
        else:
            self.last_screening = None
            accepted = list(updates)
        if expected_participants is not None:
            required = max(1, math.ceil(min_participation * expected_participants))
            if len(accepted) < required:
                rejected = (
                    self.last_screening.rejected if self.last_screening else {}
                )
                detail = (
                    "; screening rejected "
                    + ", ".join(
                        f"client {cid}: {reason}"
                        for cid, reason in sorted(rejected.items())
                    )
                    if rejected
                    else ""
                )
                raise ValueError(
                    f"refusing to aggregate {len(accepted)}/{expected_participants} "
                    f"updates: min_participation={min_participation:g} requires "
                    f"{required}{detail}"
                )
        if not accepted:
            raise ValueError(
                "screening rejected every update this round; nothing to aggregate"
            )
        merged = self._aggregate(
            [update.state for update in accepted],
            weights=[update.num_samples for update in accepted],
            reference=reference,
        )
        self.model.load_state_dict(merged)
        self._round += 1
        return merged

    def restore(self, state: StateDict, round_index: int) -> None:
        """Adopt checkpointed global weights and round counter (resume path)."""
        if round_index < 0:
            raise ValueError("round_index must be non-negative")
        self.model.load_state_dict(state)
        self._round = int(round_index)
