"""Byzantine-robust federation, end to end.

The acceptance contract of the robustness layer:

* with 2 of 10 clients mounting sign-flip and boosted model-replacement
  attacks, plain FedAvg visibly degrades while trimmed-mean / median / Krum
  (and screening + FedAvg) stay within tolerance of the clean run;
* the attack schedule, the screening decisions, and the final global state
  are bit-identical across the sequential and process backends;
* a checkpointed Byzantine run resumes bit-identically — corruption and
  screening are stateless in the round index.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ByzantineConfig, CheckpointConfig, ScreeningConfig
from repro.data.partition import partition_iid
from repro.fl.client import ClientConfig, FLClient
from repro.fl.executor import ParallelExecutor, SequentialExecutor, make_executor
from repro.fl.malicious import ByzantineInjector
from repro.fl.server import FLServer
from repro.fl.simulation import FederatedSimulation
from repro.nn.models import build_model
from repro.utils.rng import derive_rng

NUM_CLIENTS = 10
ROUNDS = 3
#: The demonstration adversary: one sign-flipper, one boosted replacer.
#: The boost must dwarf the honest learning signal on this easy, linearly
#: separable dataset for plain FedAvg to visibly lose accuracy.
ATTACK_PLAN = {0: "sign_flip", 1: "model_replacement"}
ATTACK_SCALE = 2000.0
#: Screening tuned for the drill: the sign-flipped delta has an honest
#: norm but cosine ~ -1 against the median delta, so the direction rule
#: carries it; the boosted replacement trips the norm rules.
SCREENING = ScreeningConfig(
    norm_multiplier=3.0, outlier_threshold=3.0, min_cosine=0.0
)


def _mlp_factory():
    return build_model("mlp", 3, in_features=10, hidden=(16,), seed=0)


def _build_clients(dataset, num_clients=NUM_CLIENTS):
    shards = partition_iid(dataset, num_clients, seed=0)
    return [
        FLClient(
            i, shards[i], _mlp_factory, config=ClientConfig(lr=0.05),
            seed=derive_rng(7, "byz", i),
        )
        for i in range(num_clients)
    ]


def _attack_injector(plan=None):
    return ByzantineInjector(
        ByzantineConfig(scale=ATTACK_SCALE, seed=5),
        plan=ATTACK_PLAN if plan is None else plan,
    )


def _run(dataset, *, executor=None, aggregator="fedavg", screening=None,
         rounds=ROUNDS, min_participation=1.0, aggregator_options=None):
    server = FLServer(
        _mlp_factory, aggregator=aggregator,
        aggregator_options=aggregator_options, screening=screening,
    )
    clients = _build_clients(dataset)
    if executor is None:
        executor = SequentialExecutor(min_participation=min_participation)
    with FederatedSimulation(
        server, clients, eval_dataset=dataset, eval_every=rounds,
        executor=executor,
    ) as sim:
        sim.run(rounds)
    return server.global_state(), sim.history


def _assert_states_equal(state_a, state_b):
    assert state_a.keys() == state_b.keys()
    for key in state_a:
        assert np.array_equal(state_a[key], state_b[key]), key


class TestEndToEndDefense:
    """The demonstration required by the issue: attacks break FedAvg, the
    defenses hold the line."""

    _clean_cache: dict = {}

    @pytest.fixture
    def clean_accuracy(self, tiny_vector_dataset):
        # The dataset fixture is seeded, so every test sees the identical
        # data; compute the clean baseline once per session.
        if "acc" not in self._clean_cache:
            _, history = _run(tiny_vector_dataset)
            self._clean_cache["acc"] = history.final_test_accuracy()
        return self._clean_cache["acc"]

    def test_plain_fedavg_degrades_under_attack(
        self, tiny_vector_dataset, clean_accuracy
    ):
        executor = SequentialExecutor(byzantine=_attack_injector())
        state, history = _run(tiny_vector_dataset, executor=executor)
        attacked = history.final_test_accuracy()
        # The boosted replacement plus a sign flip wreck the undefended
        # average: the model is visibly worse than clean.
        assert attacked < clean_accuracy - 0.1, (attacked, clean_accuracy)

    @pytest.mark.parametrize(
        "aggregator,options",
        [
            ("median", None),
            ("trimmed_mean", {"trim_fraction": 0.2}),
            ("krum", None),
            ("multi_krum", {"num_byzantine": 2}),
            ("norm_clip", None),
        ],
    )
    def test_robust_aggregators_survive_attack(
        self, tiny_vector_dataset, clean_accuracy, aggregator, options
    ):
        executor = SequentialExecutor(byzantine=_attack_injector())
        state, history = _run(
            tiny_vector_dataset, executor=executor,
            aggregator=aggregator, aggregator_options=options,
        )
        defended = history.final_test_accuracy()
        assert np.isfinite(flat_norm(state))
        assert defended >= clean_accuracy - 0.1, (aggregator, defended, clean_accuracy)

    def test_screening_plus_fedavg_survives_attack(
        self, tiny_vector_dataset, clean_accuracy
    ):
        executor = SequentialExecutor(
            byzantine=_attack_injector(), min_participation=0.5
        )
        state, history = _run(
            tiny_vector_dataset, executor=executor,
            screening=SCREENING, min_participation=0.5,
        )
        defended = history.final_test_accuracy()
        assert defended >= clean_accuracy - 0.1, (defended, clean_accuracy)
        # Both attackers were quarantined every round and the telemetry
        # names them.
        assert history.rejected_client_rounds() == {0: ROUNDS, 1: ROUNDS}
        for metrics in history.round_metrics:
            assert set(metrics.rejected_clients) == {0, 1}
            assert set(metrics.anomaly_scores) == set(range(NUM_CLIENTS))

    def test_nan_bomb_poisons_fedavg_and_screening_blocks_it(
        self, tiny_vector_dataset
    ):
        injector = _attack_injector(plan={4: "nan_bomb"})
        state, _ = _run(
            tiny_vector_dataset,
            executor=SequentialExecutor(byzantine=injector),
        )
        assert not all(np.isfinite(v).all() for v in state.values())
        injector = _attack_injector(plan={4: "nan_bomb"})
        state, history = _run(
            tiny_vector_dataset,
            executor=SequentialExecutor(byzantine=injector, min_participation=0.5),
            screening=SCREENING,
        )
        assert all(np.isfinite(v).all() for v in state.values())
        assert history.round_metrics[0].rejected_clients == {4: "non_finite"}


def flat_norm(state):
    return float(
        np.linalg.norm(np.concatenate([v.ravel() for v in state.values()]))
    )


class TestBackendBitIdentity:
    def test_sequential_and_process_agree_under_attack(self, tiny_vector_dataset):
        seq_state, seq_history = _run(
            tiny_vector_dataset,
            executor=SequentialExecutor(
                byzantine=_attack_injector(), min_participation=0.5
            ),
            screening=SCREENING,
            aggregator="trimmed_mean",
            aggregator_options={"trim_fraction": 0.2},
        )
        par_state, par_history = _run(
            tiny_vector_dataset,
            executor=ParallelExecutor(
                num_workers=2, byzantine=_attack_injector(), min_participation=0.5
            ),
            screening=SCREENING,
            aggregator="trimmed_mean",
            aggregator_options={"trim_fraction": 0.2},
        )
        _assert_states_equal(seq_state, par_state)
        assert seq_history.train_losses == par_history.train_losses
        # Identical rejection decisions, scores included, every round.
        for seq_round, par_round in zip(
            seq_history.round_metrics, par_history.round_metrics
        ):
            assert seq_round.rejected_clients == par_round.rejected_clients
            assert seq_round.anomaly_scores == par_round.anomaly_scores

    def test_make_executor_threads_byzantine_config(self):
        config = ByzantineConfig(attack="sign_flip", clients=(0, 1))
        executor = make_executor("sequential", byzantine_config=config)
        assert executor.byzantine is not None
        assert executor.byzantine.attack_kind(0, 0) == "sign_flip"
        assert executor.byzantine.attack_kind(0, 2) == "none"
        # Disabled configs build no injector.
        assert (
            make_executor("sequential", byzantine_config=ByzantineConfig()).byzantine
            is None
        )


class TestCheckpointResumeWithByzantine:
    def _build_sim(self, dataset, directory=None, every=0):
        server = FLServer(
            _mlp_factory, aggregator="median", screening=SCREENING
        )
        clients = _build_clients(dataset)
        executor = SequentialExecutor(
            byzantine=_attack_injector(), min_participation=0.5
        )
        checkpoint = (
            CheckpointConfig(directory=directory, every=every) if directory else None
        )
        return FederatedSimulation(
            server, clients, eval_dataset=dataset, eval_every=2,
            executor=executor, checkpoint=checkpoint,
        )

    def test_resume_reproduces_attacked_run_bitwise(
        self, tiny_vector_dataset, tmp_path
    ):
        reference = self._build_sim(tiny_vector_dataset)
        reference.run(4)

        directory = str(tmp_path / "byz_ckpts")
        interrupted = self._build_sim(tiny_vector_dataset, directory, every=2)
        interrupted.run(2)

        resumed = self._build_sim(tiny_vector_dataset, directory, every=2)
        resumed.resume(4)

        assert resumed.server.round == 4
        assert resumed.history.train_losses == reference.history.train_losses
        assert resumed.history.test_accuracy == reference.history.test_accuracy
        _assert_states_equal(
            resumed.server.global_state(), reference.server.global_state()
        )
        # The resumed half re-derives the same quarantine decisions.
        for ref_round, res_round in zip(
            reference.history.round_metrics[2:], resumed.history.round_metrics
        ):
            assert ref_round.rejected_clients == res_round.rejected_clients
