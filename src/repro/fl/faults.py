"""Deterministic client-fault injection for the FedAvg executors.

Cross-device federations are defined by stragglers, dropouts, and worker
crashes, but those failure paths are exactly the ones a simulation never
exercises by accident.  :class:`FaultInjector` makes them testable on
demand: given a :class:`~repro.core.config.FaultConfig` it decides, for
every ``(round, client, attempt)`` triple, whether that execution attempt
crashes, fails transiently, stalls, or kills its worker process.

Decisions are derived *statelessly* from ``(seed, round, client, attempt)``
via :func:`repro.utils.rng.derive_rng`, so the fault schedule is identical
regardless of execution order, backend, or how often it is queried — the
properties that let a faulty parallel round be compared bit-for-bit against
a faulty sequential one, and let a resumed run replay the same faults.

The executors consume decisions in two places:

* :class:`~repro.fl.executor.SequentialExecutor` enacts them in-process
  (``worker_death`` degrades to ``crash``: killing the only process would
  kill the simulation itself);
* :class:`~repro.fl.executor.ParallelExecutor` ships each decision to the
  worker alongside the training task; the worker enacts it *before*
  touching client state, so a failed attempt never leaves partial state
  behind and a retry is bit-identical to a first try.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass
from typing import Mapping, Optional, Tuple, Union

from repro.core.config import FaultConfig
from repro.utils.rng import derive_rng

#: Every fault kind an injector can decide on ("none" means healthy).
FAULT_KINDS = ("none", "crash", "transient", "straggler", "worker_death")


class InjectedFault(RuntimeError):
    """Base class of all injector-raised failures."""


class InjectedClientCrash(InjectedFault):
    """A permanent client failure for this round — never retried."""


class InjectedTransientError(InjectedFault):
    """A retriable failure: a later attempt may succeed."""


class StragglerTimeout(InjectedFault):
    """A straggler exceeded the per-client budget (sequential simulation)."""


@dataclass(frozen=True)
class FaultDecision:
    """What happens to one ``(round, client, attempt)`` execution."""

    kind: str = "none"
    delay_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"kind must be one of {FAULT_KINDS}")
        if self.delay_seconds < 0:
            raise ValueError("delay_seconds must be non-negative")

    @property
    def is_fault(self) -> bool:
        return self.kind != "none"


#: Shared healthy decision (frozen, so safe to share).
NO_FAULT = FaultDecision()


@dataclass
class ClientFailure:
    """One client's terminal failure within a round (post-retries)."""

    client_id: int
    kind: str  # "crash" | "transient" | "straggler" | "worker_death" | "error"
    attempts: int
    message: str


PlanKey = Tuple[int, int, int]  # (round_index, client_id, attempt)
PlanValue = Union[str, FaultDecision]


class FaultInjector:
    """Seeded, stateless fault oracle for the round executors.

    Parameters
    ----------
    config:
        Fault rates and the root seed of the fault stream.
    plan:
        Optional explicit overrides: ``{(round, client, attempt): decision}``
        where the decision is a :class:`FaultDecision` or a bare kind string
        (``"crash"``, ``"transient"``, ...; stragglers default to the
        config's delay).  Triples absent from the plan fall back to the
        seeded sampling — pass ``FaultConfig()`` (all rates zero) for a
        fully scripted schedule.
    """

    def __init__(
        self,
        config: Optional[FaultConfig] = None,
        plan: Optional[Mapping[PlanKey, PlanValue]] = None,
    ) -> None:
        self.config = config or FaultConfig()
        self.plan = dict(plan) if plan else {}

    def decide(self, round_index: int, client_id: int, attempt: int) -> FaultDecision:
        """The (deterministic) fate of this execution attempt."""
        planned = self.plan.get((round_index, client_id, attempt))
        if planned is not None:
            return self._coerce(planned)
        config = self.config
        if not config.enabled:
            return NO_FAULT
        draw = float(
            derive_rng(config.seed, "fault", round_index, client_id, attempt).random()
        )
        edge = config.crash_rate
        if draw < edge:
            return FaultDecision(kind="crash")
        edge += config.transient_rate
        if draw < edge:
            return FaultDecision(kind="transient")
        edge += config.straggler_rate
        if draw < edge:
            return FaultDecision(
                kind="straggler", delay_seconds=config.straggler_delay_seconds
            )
        edge += config.worker_death_rate
        if draw < edge:
            return FaultDecision(kind="worker_death")
        return NO_FAULT

    def delay_for(self, round_index: int, client_id: int, attempt: int) -> float:
        """Total injected latency (seconds) for this execution attempt.

        The straggler delay of :meth:`decide` (zero for healthy attempts)
        plus a heavy-tailed lognormal jitter term
        ``jitter_scale * exp(jitter_sigma * N(0, 1))`` when the config
        enables jitter.  Like every fault draw the sample is stateless in
        ``(seed, round, client, attempt)``, so arrival schedules built from
        it replay identically across backends and across resume.  The async
        engine advances *virtual* time by this amount; synchronous callers
        may sleep it instead.
        """
        decision = self.decide(round_index, client_id, attempt)
        base = decision.delay_seconds if decision.kind == "straggler" else 0.0
        config = self.config
        if config.jitter_scale <= 0.0:
            return base
        rng = derive_rng(config.seed, "delay", round_index, client_id, attempt)
        jitter = config.jitter_scale * math.exp(
            config.jitter_sigma * float(rng.standard_normal())
        )
        return base + jitter

    def _coerce(self, planned: PlanValue) -> FaultDecision:
        if isinstance(planned, FaultDecision):
            return planned
        if planned == "straggler":
            return FaultDecision(
                kind="straggler",
                delay_seconds=self.config.straggler_delay_seconds,
            )
        return FaultDecision(kind=planned)


def enact_fault(decision: FaultDecision, in_worker: bool) -> None:
    """Enact a fault decision at the point a client would start training.

    ``straggler`` sleeps, then returns (training proceeds late); the other
    kinds raise.  ``worker_death`` hard-kills the hosting process — only
    when ``in_worker`` is true; in-process executors degrade it to a crash.
    Callers must invoke this *before* mutating any client state so failed
    attempts are side-effect free.
    """
    if decision.kind == "none":
        return
    if decision.kind == "straggler":
        if decision.delay_seconds > 0:
            time.sleep(decision.delay_seconds)
        return
    if decision.kind == "transient":
        raise InjectedTransientError("injected transient fault")
    if decision.kind == "worker_death":
        if in_worker:
            # A real worker death (OOM kill, segfault) gives the runtime no
            # chance to clean up; os._exit reproduces that faithfully.
            os._exit(13)
        raise InjectedClientCrash("injected worker death (degraded to crash in-process)")
    raise InjectedClientCrash("injected client crash")


@dataclass(frozen=True)
class RetryBackoff:
    """Exponential backoff schedule between retry attempts."""

    base_seconds: float = 0.05
    factor: float = 2.0
    max_seconds: float = 5.0

    def __post_init__(self) -> None:
        if self.base_seconds < 0 or self.max_seconds < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.factor < 1.0:
            raise ValueError("backoff factor must be >= 1")

    def delay(self, attempt: int) -> float:
        """Seconds to wait after failed attempt number ``attempt`` (0-based)."""
        return min(self.base_seconds * self.factor ** attempt, self.max_seconds)
