"""Deterministic random-number management.

Every stochastic component in the library (dataset generators, weight
initialization, FL client sampling, attack shadow models, DP noise) takes an
explicit seed or ``numpy.random.Generator``.  This module centralises how
child generators are derived so that experiments are reproducible end to end:
the same top-level seed always produces the same partition, the same initial
weights, and the same noise draws, regardless of import order.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def as_generator(seed: SeedLike) -> np.random.Generator:
    """Coerce an int seed, an existing generator, or ``None`` to a Generator.

    ``None`` yields a non-deterministic generator; callers that need
    reproducibility should always pass an int or Generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_rng(seed: SeedLike, *keys: Union[int, str]) -> np.random.Generator:
    """Derive a child generator from ``seed`` and a sequence of keys.

    Unlike ``Generator.spawn`` this is stateless: deriving with the same
    (seed, keys) twice yields the same stream, which lets independent
    subsystems derive their own generators without coordinating draw order.

    String keys are hashed with a stable FNV-1a so the derivation does not
    depend on the process hash seed.
    """
    material: List[int] = []
    if isinstance(seed, np.random.Generator):
        # Fold the generator's own state into the derivation.
        material.append(int(seed.integers(0, 2**32)))
    elif seed is not None:
        material.append(int(seed) & 0xFFFFFFFF)
    for key in keys:
        if isinstance(key, str):
            material.append(_fnv1a(key))
        else:
            material.append(int(key) & 0xFFFFFFFF)
    return np.random.default_rng(np.random.SeedSequence(material))


def spawn_rngs(seed: SeedLike, n: int, label: str = "") -> List[np.random.Generator]:
    """Derive ``n`` independent child generators, e.g. one per FL client."""
    return [derive_rng(seed, label, i) for i in range(n)]


def _fnv1a(text: str) -> int:
    acc = 0x811C9DC5
    for byte in text.encode("utf-8"):
        acc ^= byte
        acc = (acc * 0x01000193) & 0xFFFFFFFF
    return acc


class RngMixin:
    """Mixin giving a class a lazily-created, seedable ``self.rng``."""

    def __init__(self, seed: SeedLike = None) -> None:
        self._seed = seed
        self._rng: Optional[np.random.Generator] = None

    @property
    def rng(self) -> np.random.Generator:
        if self._rng is None:
            self._rng = as_generator(self._seed)
        return self._rng
