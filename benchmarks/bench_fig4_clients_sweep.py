"""[Figure 4] CIP vs DP vs HDP vs no defense across federation sizes.

Paper: CIP's test accuracy tracks (or beats) no-defense at every client
count while its internal attack accuracy sits at random guessing; DP's
accuracy collapses as clients grow.  Shape checks: CIP's mean accuracy beats
DP's, and CIP's attacks are weaker than no-defense's.
"""

import numpy as np

from benchmarks.conftest import run_and_report


def test_fig4_clients_sweep(benchmark, profile):
    result = run_and_report(benchmark, "fig4", profile)
    by_defense = {}
    for row in result.rows:
        by_defense.setdefault(row["defense"], []).append(row)
    assert set(by_defense) == {"none", "cip", "dp", "hdp"}

    mean_acc = {d: np.mean([r["test_acc"] for r in rows]) for d, rows in by_defense.items()}
    # utility: CIP >> DP (the paper's central internal-adversary claim)
    assert mean_acc["cip"] > mean_acc["dp"]

    # privacy: CIP's passive attack accuracy below the undefended one
    mean_passive = {
        d: np.mean([r["passive_attack_acc"] for r in rows]) for d, rows in by_defense.items()
    }
    assert mean_passive["cip"] <= mean_passive["none"] + 0.05
