"""Federated-learning simulation substrate (FedAvg, per McMahan/Nasr)."""

from repro.fl.aggregation import (
    AGGREGATORS,
    STALENESS_POLICIES,
    staleness_weight,
    apply_delta,
    coordinate_median,
    fedavg,
    flatten_state,
    krum,
    make_aggregator,
    multi_krum,
    norm_clipped_fedavg,
    state_delta,
    trimmed_mean,
)
from repro.fl.async_engine import AsyncExecutor
from repro.fl.checkpoint import latest_checkpoint, list_checkpoints
from repro.fl.client import ClientConfig, ClientUpdate, FLClient
from repro.fl.executor import (
    ParallelExecutor,
    RoundExecutionError,
    RoundExecutor,
    SequentialExecutor,
    make_executor,
)
from repro.fl.faults import (
    ClientFailure,
    FaultDecision,
    FaultInjector,
    InjectedClientCrash,
    InjectedTransientError,
    RetryBackoff,
)
from repro.fl.server import FLServer
from repro.fl.simulation import (
    FederatedSimulation,
    FLHistory,
    RoundMetrics,
    RoundSnapshot,
)
from repro.fl.local import (
    LocalTrainingResult,
    remap_to_local_classes,
    run_local_training,
)
from repro.fl.communication import (
    CommunicationLedger,
    compare_traffic,
    round_traffic_bytes,
    state_dict_bytes,
)
from repro.fl.malicious import (
    ByzantineInjector,
    GradientAscentHook,
    corrupt_state,
    per_sample_losses_of_state,
)
from repro.fl.robust import (
    REJECT_REASONS,
    ScreeningReport,
    StreamingScreener,
    screen_updates,
)
from repro.fl.training import (
    EvalResult,
    default_forward,
    evaluate_model,
    predict_logits,
    train_supervised,
)

__all__ = [
    "fedavg",
    "state_delta",
    "apply_delta",
    "flatten_state",
    "AGGREGATORS",
    "STALENESS_POLICIES",
    "staleness_weight",
    "coordinate_median",
    "trimmed_mean",
    "norm_clipped_fedavg",
    "krum",
    "multi_krum",
    "make_aggregator",
    "ClientConfig",
    "ClientUpdate",
    "FLClient",
    "FLServer",
    "FederatedSimulation",
    "FLHistory",
    "RoundMetrics",
    "RoundSnapshot",
    "RoundExecutor",
    "RoundExecutionError",
    "SequentialExecutor",
    "ParallelExecutor",
    "AsyncExecutor",
    "make_executor",
    "FaultInjector",
    "FaultDecision",
    "ClientFailure",
    "InjectedClientCrash",
    "InjectedTransientError",
    "RetryBackoff",
    "latest_checkpoint",
    "list_checkpoints",
    "LocalTrainingResult",
    "remap_to_local_classes",
    "run_local_training",
    "CommunicationLedger",
    "state_dict_bytes",
    "round_traffic_bytes",
    "compare_traffic",
    "GradientAscentHook",
    "per_sample_losses_of_state",
    "ByzantineInjector",
    "corrupt_state",
    "screen_updates",
    "ScreeningReport",
    "StreamingScreener",
    "REJECT_REASONS",
    "EvalResult",
    "default_forward",
    "evaluate_model",
    "predict_logits",
    "train_supervised",
]
