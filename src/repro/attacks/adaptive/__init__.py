"""Adaptive adversaries (paper RQ4): attackers who know CIP's mechanism."""

from repro.attacks.adaptive.optimization1 import ProbeOptimizationAttack
from repro.attacks.adaptive.optimization2 import ActiveAlterationAttack
from repro.attacks.adaptive.knowledge1 import PublicSeedAttack
from repro.attacks.adaptive.knowledge2 import PartialDataAttack
from repro.attacks.adaptive.knowledge3 import (
    SubstitutePerturbationAttack,
    SubstitutePerturbationReport,
)
from repro.attacks.adaptive.knowledge4 import InverseMIAttack

__all__ = [
    "ProbeOptimizationAttack",
    "ActiveAlterationAttack",
    "PublicSeedAttack",
    "PartialDataAttack",
    "SubstitutePerturbationAttack",
    "SubstitutePerturbationReport",
    "InverseMIAttack",
]
