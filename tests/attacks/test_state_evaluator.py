"""StateEvaluator and the CIP zero-blend forward used by internal attacks."""

import numpy as np
import pytest

from repro.attacks.internal import (
    StateEvaluator,
    cip_zero_blend_forward,
    plain_forward,
)
from repro.core.config import CIPConfig
from repro.nn.models import build_model
from repro.nn.serialization import state_dicts_allclose


def plain_factory():
    return build_model("mlp", 4, in_features=16, hidden=(16,), seed=0)


def dual_factory():
    return build_model("mlp", 4, in_features=16, hidden=(16,), dual_channel=True, seed=0)


RNG = np.random.default_rng(0)
INPUTS = RNG.random((12, 16))
LABELS = RNG.integers(0, 4, 12)


class TestStateEvaluator:
    def test_loads_the_requested_state(self):
        evaluator = StateEvaluator(plain_factory())
        source = build_model("mlp", 4, in_features=16, hidden=(16,), seed=7)
        evaluator.per_sample_loss(source.state_dict(), INPUTS, LABELS)
        assert state_dicts_allclose(
            evaluator.model.state_dict(), source.state_dict()
        )

    def test_different_states_different_losses(self):
        evaluator = StateEvaluator(plain_factory())
        a = build_model("mlp", 4, in_features=16, hidden=(16,), seed=1).state_dict()
        b = build_model("mlp", 4, in_features=16, hidden=(16,), seed=2).state_dict()
        loss_a = evaluator.per_sample_loss(a, INPUTS, LABELS)
        loss_b = evaluator.per_sample_loss(b, INPUTS, LABELS)
        assert not np.allclose(loss_a, loss_b)

    def test_per_sample_shape_and_finiteness(self):
        evaluator = StateEvaluator(plain_factory())
        losses = evaluator.per_sample_loss(
            plain_factory().state_dict(), INPUTS, LABELS
        )
        assert losses.shape == (12,)
        assert np.isfinite(losses).all()


class TestCIPZeroBlendForward:
    def test_forward_feeds_the_dual_channel_pair(self):
        config = CIPConfig(alpha=0.5)
        forward = cip_zero_blend_forward(config)
        model = dual_factory()
        out = forward(model, INPUTS)
        assert out.shape == (12, 4)

    def test_matches_manual_blend(self):
        from repro.core.blending import blend
        from repro.nn.tensor import no_grad

        config = CIPConfig(alpha=0.7)
        forward = cip_zero_blend_forward(config)
        model = dual_factory()
        model.eval()
        with no_grad():
            via_forward = forward(model, INPUTS).data
            via_blend = model(blend(INPUTS, None, 0.7, config.clip_range)).data
        np.testing.assert_allclose(via_forward, via_blend)

    def test_evaluator_with_cip_forward(self):
        config = CIPConfig(alpha=0.5)
        evaluator = StateEvaluator(dual_factory(), forward=cip_zero_blend_forward(config))
        losses = evaluator.per_sample_loss(dual_factory().state_dict(), INPUTS, LABELS)
        assert losses.shape == (12,)
        assert np.isfinite(losses).all()

    def test_plain_forward(self):
        model = plain_factory()
        out = plain_forward(model, INPUTS)
        assert out.shape == (12, 4)
