"""Deterministic client-fault injection for the FedAvg executors.

Cross-device federations are defined by stragglers, dropouts, and worker
crashes, but those failure paths are exactly the ones a simulation never
exercises by accident.  :class:`FaultInjector` makes them testable on
demand: given a :class:`~repro.core.config.FaultConfig` it decides, for
every ``(round, client, attempt)`` triple, whether that execution attempt
crashes, fails transiently, stalls, or kills its worker process.

Decisions are derived *statelessly* from ``(seed, round, client, attempt)``
via :func:`repro.utils.rng.derive_rng`, so the fault schedule is identical
regardless of execution order, backend, or how often it is queried — the
properties that let a faulty parallel round be compared bit-for-bit against
a faulty sequential one, and let a resumed run replay the same faults.

The executors consume decisions in two places:

* :class:`~repro.fl.executor.SequentialExecutor` enacts them in-process
  (``worker_death`` degrades to ``crash``: killing the only process would
  kill the simulation itself);
* :class:`~repro.fl.executor.ParallelExecutor` ships each decision to the
  worker alongside the training task; the worker enacts it *before*
  touching client state, so a failed attempt never leaves partial state
  behind and a retry is bit-identical to a first try.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass
from typing import Mapping, Optional, Tuple, Union

from repro.core.config import FaultConfig
from repro.utils.rng import derive_rng

#: Every fault kind an injector can decide on ("none" means healthy).
FAULT_KINDS = ("none", "crash", "transient", "straggler", "worker_death")

#: Wire-level corruption kinds applied to encoded update payloads
#: ("none" means the transmission arrives intact).
WIRE_FAULT_KINDS = ("none", "bit_flip", "truncate", "garble_header")


class InjectedFault(RuntimeError):
    """Base class of all injector-raised failures."""


class InjectedClientCrash(InjectedFault):
    """A permanent client failure for this round — never retried."""


class InjectedTransientError(InjectedFault):
    """A retriable failure: a later attempt may succeed."""


class StragglerTimeout(InjectedFault):
    """A straggler exceeded the per-client budget (sequential simulation)."""


@dataclass(frozen=True)
class FaultDecision:
    """What happens to one ``(round, client, attempt)`` execution."""

    kind: str = "none"
    delay_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"kind must be one of {FAULT_KINDS}")
        if self.delay_seconds < 0:
            raise ValueError("delay_seconds must be non-negative")

    @property
    def is_fault(self) -> bool:
        return self.kind != "none"


#: Shared healthy decision (frozen, so safe to share).
NO_FAULT = FaultDecision()


@dataclass
class ClientFailure:
    """One client's terminal failure within a round (post-retries)."""

    client_id: int
    kind: str  # "crash" | "transient" | "straggler" | "worker_death" | "error"
    attempts: int
    message: str


PlanKey = Tuple[int, int, int]  # (round_index, client_id, attempt)
PlanValue = Union[str, FaultDecision]


def corrupt_payload(payload: bytes, kind: str, rng) -> bytes:
    """Apply one wire-corruption ``kind`` to an encoded update payload.

    Pure in ``(payload, kind, rng state)``: the same rng (normally a
    ``derive_rng``-seeded generator) mangles the same bytes the same way,
    which is what makes chaos runs replay bit-identically.

    * ``bit_flip`` flips a single random bit somewhere in the payload;
    * ``truncate`` cuts the payload at a random interior offset;
    * ``garble_header`` overwrites a byte in the first 12 bytes — the RFW1
      magic/version/codec header (or the npz ZIP magic for dense payloads).
    """
    if kind == "none":
        return payload
    if kind not in WIRE_FAULT_KINDS:
        raise ValueError(f"kind must be one of {WIRE_FAULT_KINDS}")
    if not payload:
        return payload
    data = bytearray(payload)
    if kind == "bit_flip":
        index = int(rng.integers(0, len(data)))
        data[index] ^= 1 << int(rng.integers(0, 8))
    elif kind == "truncate":
        # Keep at least one byte and drop at least one so the cut is real.
        if len(data) == 1:
            return b""
        cut = int(rng.integers(1, len(data)))
        del data[cut:]
    else:  # garble_header
        span = min(12, len(data))
        index = int(rng.integers(0, span))
        # XOR with a random non-zero byte so the header always changes.
        data[index] ^= int(rng.integers(1, 256))
    return bytes(data)


class FaultInjector:
    """Seeded, stateless fault oracle for the round executors.

    Parameters
    ----------
    config:
        Fault rates and the root seed of the fault stream.
    plan:
        Optional explicit overrides: ``{(round, client, attempt): decision}``
        where the decision is a :class:`FaultDecision` or a bare kind string
        (``"crash"``, ``"transient"``, ...; stragglers default to the
        config's delay).  Triples absent from the plan fall back to the
        seeded sampling — pass ``FaultConfig()`` (all rates zero) for a
        fully scripted schedule.
    wire_plan:
        Optional explicit wire-corruption overrides keyed like ``plan`` but
        on *transmission* attempts: ``{(round, client, attempt): kind}``
        with a kind from :data:`WIRE_FAULT_KINDS`.  Triples absent from the
        plan fall back to the seeded ``wire_corrupt_rate`` sampling.
    """

    def __init__(
        self,
        config: Optional[FaultConfig] = None,
        plan: Optional[Mapping[PlanKey, PlanValue]] = None,
        wire_plan: Optional[Mapping[PlanKey, str]] = None,
    ) -> None:
        self.config = config or FaultConfig()
        self.plan = dict(plan) if plan else {}
        self.wire_plan = dict(wire_plan) if wire_plan else {}

    def decide(self, round_index: int, client_id: int, attempt: int) -> FaultDecision:
        """The (deterministic) fate of this execution attempt."""
        planned = self.plan.get((round_index, client_id, attempt))
        if planned is not None:
            return self._coerce(planned)
        config = self.config
        if not config.enabled:
            return NO_FAULT
        draw = float(
            derive_rng(config.seed, "fault", round_index, client_id, attempt).random()
        )
        edge = config.crash_rate
        if draw < edge:
            return FaultDecision(kind="crash")
        edge += config.transient_rate
        if draw < edge:
            return FaultDecision(kind="transient")
        edge += config.straggler_rate
        if draw < edge:
            return FaultDecision(
                kind="straggler", delay_seconds=config.straggler_delay_seconds
            )
        edge += config.worker_death_rate
        if draw < edge:
            return FaultDecision(kind="worker_death")
        return NO_FAULT

    def delay_for(self, round_index: int, client_id: int, attempt: int) -> float:
        """Total injected latency (seconds) for this execution attempt.

        The straggler delay of :meth:`decide` (zero for healthy attempts)
        plus a heavy-tailed lognormal jitter term
        ``jitter_scale * exp(jitter_sigma * N(0, 1))`` when the config
        enables jitter.  Like every fault draw the sample is stateless in
        ``(seed, round, client, attempt)``, so arrival schedules built from
        it replay identically across backends and across resume.  The async
        engine advances *virtual* time by this amount; synchronous callers
        may sleep it instead.
        """
        decision = self.decide(round_index, client_id, attempt)
        base = decision.delay_seconds if decision.kind == "straggler" else 0.0
        config = self.config
        if config.jitter_scale <= 0.0:
            return base
        rng = derive_rng(config.seed, "delay", round_index, client_id, attempt)
        jitter = config.jitter_scale * math.exp(
            config.jitter_sigma * float(rng.standard_normal())
        )
        return base + jitter

    @property
    def wire_enabled(self) -> bool:
        """Whether any wire corruption can occur (rate or scripted plan)."""
        return self.config.wire_corrupt_rate > 0.0 or bool(self.wire_plan)

    @property
    def checkpoint_enabled(self) -> bool:
        """Whether checkpoint corruption can occur."""
        return self.config.checkpoint_corrupt_rate > 0.0

    def wire_fault(self, round_index: int, client_id: int, attempt: int) -> str:
        """Corruption kind for one payload transmission ("none" = intact).

        ``attempt`` counts *transmissions* of this client's update within
        the round — its own counter, independent of the training-fault
        attempt counter, so retransmission schedules are identical on every
        backend regardless of how training retries interleave.
        """
        planned = self.wire_plan.get((round_index, client_id, attempt))
        if planned is not None:
            if planned not in WIRE_FAULT_KINDS:
                raise ValueError(f"planned wire fault must be one of {WIRE_FAULT_KINDS}")
            return planned
        rate = self.config.wire_corrupt_rate
        if rate <= 0.0:
            return "none"
        rng = derive_rng(self.config.seed, "wire", round_index, client_id, attempt)
        if float(rng.random()) >= rate:
            return "none"
        # Same stream picks the kind, so (fires?, kind) replays together.
        kinds = WIRE_FAULT_KINDS[1:]
        return kinds[int(rng.integers(0, len(kinds)))]

    def corrupt_wire(
        self, payload: bytes, round_index: int, client_id: int, attempt: int
    ) -> Tuple[bytes, str]:
        """Possibly-corrupted copy of one transmission, plus the kind applied.

        Byte positions are drawn from a dedicated ``"wire-bytes"`` stream so
        adding kinds never perturbs the fires-or-not schedule above.
        """
        kind = self.wire_fault(round_index, client_id, attempt)
        if kind == "none":
            return payload, kind
        rng = derive_rng(
            self.config.seed, "wire-bytes", round_index, client_id, attempt
        )
        return corrupt_payload(payload, kind, rng), kind

    def checkpoint_fault(self, round_index: int) -> bool:
        """Whether the checkpoint written after ``round_index`` rots on disk."""
        rate = self.config.checkpoint_corrupt_rate
        if rate <= 0.0:
            return False
        rng = derive_rng(self.config.seed, "ckpt", round_index)
        return float(rng.random()) < rate

    def corrupt_checkpoint(self, path: str, round_index: int) -> bool:
        """Corrupt the checkpoint file at ``path`` if this round's draw fires.

        Returns whether corruption was applied.  The mangling reuses
        :func:`corrupt_payload` over the file bytes (seeded from the round),
        simulating storage rot *after* a successful atomic write — exactly
        the failure the digest-verified last-good recovery chain exists for.
        """
        if not self.checkpoint_fault(round_index):
            return False
        rng = derive_rng(self.config.seed, "ckpt-bytes", round_index)
        with open(path, "rb") as handle:
            data = handle.read()
        kinds = ("bit_flip", "truncate", "garble_header")
        kind = kinds[int(rng.integers(0, len(kinds)))]
        with open(path, "wb") as handle:
            handle.write(corrupt_payload(data, kind, rng))
        return True

    def _coerce(self, planned: PlanValue) -> FaultDecision:
        if isinstance(planned, FaultDecision):
            return planned
        if planned == "straggler":
            return FaultDecision(
                kind="straggler",
                delay_seconds=self.config.straggler_delay_seconds,
            )
        return FaultDecision(kind=planned)


def enact_fault(decision: FaultDecision, in_worker: bool) -> None:
    """Enact a fault decision at the point a client would start training.

    ``straggler`` sleeps, then returns (training proceeds late); the other
    kinds raise.  ``worker_death`` hard-kills the hosting process — only
    when ``in_worker`` is true; in-process executors degrade it to a crash.
    Callers must invoke this *before* mutating any client state so failed
    attempts are side-effect free.
    """
    if decision.kind == "none":
        return
    if decision.kind == "straggler":
        if decision.delay_seconds > 0:
            time.sleep(decision.delay_seconds)
        return
    if decision.kind == "transient":
        raise InjectedTransientError("injected transient fault")
    if decision.kind == "worker_death":
        if in_worker:
            # A real worker death (OOM kill, segfault) gives the runtime no
            # chance to clean up; os._exit reproduces that faithfully.
            os._exit(13)
        raise InjectedClientCrash("injected worker death (degraded to crash in-process)")
    raise InjectedClientCrash("injected client crash")


@dataclass(frozen=True)
class RetryBackoff:
    """Exponential backoff schedule between retry attempts."""

    base_seconds: float = 0.05
    factor: float = 2.0
    max_seconds: float = 5.0

    def __post_init__(self) -> None:
        if self.base_seconds < 0 or self.max_seconds < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.factor < 1.0:
            raise ValueError("backoff factor must be >= 1")

    def delay(self, attempt: int) -> float:
        """Seconds to wait after failed attempt number ``attempt`` (0-based)."""
        return min(self.base_seconds * self.factor ** attempt, self.max_seconds)
