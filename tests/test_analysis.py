"""Shape-agreement analysis and the paper's reference data."""

import numpy as np
import pytest

from repro.analysis import (
    compare_sweeps,
    ordering_agreement,
    paper_reference as ref,
    spearman_rank_correlation,
    trend_agreement,
    trend_direction,
)


class TestSpearman:
    def test_perfect_monotone(self):
        assert spearman_rank_correlation([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)
        assert spearman_rank_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_handles_ties(self):
        rho = spearman_rank_correlation([1, 1, 2], [1, 1, 2])
        assert rho == pytest.approx(1.0)

    def test_constant_series_is_zero(self):
        assert spearman_rank_correlation([1, 1, 1], [1, 2, 3]) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            spearman_rank_correlation([1], [1])
        with pytest.raises(ValueError):
            spearman_rank_correlation([1, 2], [1, 2, 3])

    def test_nonlinear_but_monotone_still_one(self):
        x = [0.1, 0.2, 0.3, 0.4]
        y = [np.exp(v) for v in x]
        assert spearman_rank_correlation(x, y) == pytest.approx(1.0)


class TestTrends:
    def test_direction(self):
        assert trend_direction([1, 2, 3]) == 1
        assert trend_direction([3, 1, 0]) == -1
        assert trend_direction([1.0, 1.005], tolerance=0.01) == 0

    def test_agreement(self):
        assert trend_agreement([0.9, 0.6], [0.95, 0.64])
        assert not trend_agreement([0.6, 0.9], [0.95, 0.64])
        # flat published matches anything
        assert trend_agreement([0.6, 0.9], [0.5, 0.5])
        # flat measured matches any published direction (within tolerance)
        assert trend_agreement([0.70, 0.705], [0.9, 0.5], tolerance=0.01)


class TestOrdering:
    def test_perfect(self):
        assert ordering_agreement([1, 2, 3], [10, 20, 30]) == 1.0

    def test_inverted(self):
        assert ordering_agreement([3, 2, 1], [1, 2, 3]) == 0.0

    def test_ties_half(self):
        assert ordering_agreement([1, 1], [1, 2]) == 0.5


class TestCompareSweeps:
    def test_agreeing_sweep(self):
        published = [0.95, 0.89, 0.75, 0.65, 0.61]  # paper's Table VI cifar
        measured = [0.90, 0.80, 0.72, 0.70, 0.60]
        report = compare_sweeps(measured, published)
        assert report.agrees
        assert report.spearman > 0.9

    def test_disagreeing_sweep(self):
        published = [0.95, 0.89, 0.75, 0.65, 0.61]
        measured = [0.55, 0.60, 0.72, 0.80, 0.90]
        report = compare_sweeps(measured, published)
        assert not report.agrees


class TestPaperReference:
    def test_table5_structure(self):
        for dataset in ("cifar100", "cifar_aug", "chmnist", "purchase50"):
            alphas, accuracies = ref.table5_sweep(dataset)
            assert alphas == [0.1, 0.3, 0.5, 0.7, 0.9]
            assert all(0.0 < a < 1.0 for a in accuracies)

    def test_paper_table5_claims_hold_in_reference_data(self):
        """Sanity: the transcription reproduces the paper's own take-aways."""
        for dataset, row in ref.TABLE5_ACCURACY.items():
            # at most ~2% drop even at alpha=0.9 relative to no defense
            assert row[0.9] > row[0.0] - 0.04
            # small alphas are on par or better than no defense
            assert row[0.1] >= row[0.0] - 0.005

    def test_paper_table6_decreasing_in_alpha(self):
        for dataset in ref.TABLE6_OPT1:
            alphas, series = ref.table6_external_sweep(dataset)
            assert trend_direction(series, tolerance=0.02) <= 0

    def test_paper_table10_increasing_in_alpha(self):
        for dataset in ref.TABLE10_INVERSE:
            _, series = ref.table10_sweep(dataset)
            assert trend_direction(series) == 1
            assert max(series) < 0.5  # at or below random guessing

    def test_table11_overhead_matches_headline(self):
        overheads = [
            100.0 * (cip - none) / none
            for none, cip, _, _ in ref.TABLE11_OVERHEAD.values()
        ]
        assert np.mean(overheads) == pytest.approx(
            ref.HEADLINES["param_overhead_pct"], abs=0.15
        )
        for _, _, epochs_none, epochs_cip in ref.TABLE11_OVERHEAD.values():
            assert epochs_cip * 2 == epochs_none  # the 50% claim

    def test_table4_attack_accuracy_near_random(self):
        accuracies = [acc for *_rest, acc in ref.TABLE4_ATTACK_METRICS.values()]
        assert max(accuracies) <= 0.65
        assert np.mean(accuracies) < 0.55

    def test_table3_crossover(self):
        """CIP beats no-defense under non-i.i.d., loses slightly at i.i.d."""
        assert ref.TABLE3_HETEROGENEITY[20][0] > ref.TABLE3_HETEROGENEITY[20][1]
        assert ref.TABLE3_HETEROGENEITY[100][0] < ref.TABLE3_HETEROGENEITY[100][1]

    def test_knowledge3_gap_structure(self):
        k3 = ref.KNOWLEDGE3
        assert k3["train_acc_true_t"] - k3["test_acc_true_t"] > 0.3
        assert k3["train_acc_substitute_t"] - k3["test_acc_substitute_t"] < 0.05
