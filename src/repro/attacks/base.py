"""Membership-inference attack framework.

**Target APIs.**  Attacks never touch models directly; they query a
:class:`TargetModel`, which defines what the adversary can observe:

* :class:`PlainTarget` — a legacy single-channel model queried with raw
  inputs (the no-defense / baseline-defense case).
* :class:`CIPTarget` — a CIP dual-channel model.  The adversary does not
  know the client's secret ``t``, so its queries are blended with its own
  guess (``guess_t``, default zero) — exactly the information asymmetry the
  defense relies on.

Both expose white-box extras (``module``, per-sample gradient norms) used by
parameter-based attacks; output-based attacks only call ``predict`` /
``per_sample_loss``.

**Protocol.**  An attack ``fit``\\ s on calibration pools of *known* members
and non-members (the standard evaluation protocol: the adversary can always
construct such pools from its own data or shadow models), then ``score``\\ s
evaluation samples — higher score = more member-like — and
:func:`evaluate_attack` thresholds at 0.5 and reports the Table-IV metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.blending import blend
from repro.core.config import CIPConfig
from repro.data.dataset import Dataset
from repro.fl.training import predict_logits
from repro.metrics.classification import BinaryMetrics, binary_metrics, roc_auc
from repro.nn.layers import Module
from repro.nn.losses import cross_entropy, per_sample_cross_entropy
from repro.nn.tensor import Tensor, no_grad

StateDict = Dict[str, np.ndarray]


class TargetModel:
    """What the adversary can query.  Subclasses define the observation."""

    def __init__(self, module: Module, num_classes: int) -> None:
        self.module = module
        self.num_classes = num_classes
        self.query_count = 0

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Raw logits for attacker-supplied inputs."""
        raise NotImplementedError

    def per_sample_loss(self, inputs: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """Per-sample cross-entropy of the attacker's queries."""
        logits = self.predict(inputs)
        return per_sample_cross_entropy(logits, labels)

    def predict_proba(self, inputs: np.ndarray) -> np.ndarray:
        """Softmax probabilities (what output-based attacks consume)."""
        logits = self.predict(inputs)
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)

    # -- white-box surface -------------------------------------------------
    def state(self) -> StateDict:
        return self.module.state_dict()

    def per_sample_grad_norms(self, inputs: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """L2 norm of the loss gradient w.r.t. model parameters, per sample.

        The core feature of parameter-based attacks (Nasr, Leino-Fredrikson):
        members sit near loss minima, so their gradients are systematically
        smaller.
        """
        labels = np.asarray(labels, dtype=np.int64)
        norms = np.empty(len(inputs), dtype=np.float64)
        self.module.train()
        for i in range(len(inputs)):
            self.module.zero_grad()
            logits = self._forward_tensor(inputs[i : i + 1])
            loss = cross_entropy(logits, labels[i : i + 1])
            loss.backward()
            total = 0.0
            for param in self.module.parameters():
                if param.grad is not None:
                    total += float(np.sum(param.grad**2))
            norms[i] = np.sqrt(total)
        self.module.zero_grad()
        self.module.eval()
        return norms

    def _forward_tensor(self, inputs: np.ndarray) -> Tensor:
        raise NotImplementedError


class PlainTarget(TargetModel):
    """Legacy single-channel model, queried with raw inputs."""

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        self.query_count += len(inputs)
        return predict_logits(self.module, inputs)

    def _forward_tensor(self, inputs: np.ndarray) -> Tensor:
        return self.module(Tensor(inputs))


class CIPTarget(TargetModel):
    """CIP dual-channel model queried without knowledge of the true ``t``.

    ``guess_t=None`` is the uninformed adversary (zero-perturbation blend);
    adaptive attacks pass their optimized/stolen guess.
    """

    def __init__(
        self,
        module: Module,
        num_classes: int,
        config: CIPConfig,
        guess_t: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__(module, num_classes)
        self.config = config
        self.guess_t = None if guess_t is None else np.asarray(guess_t, dtype=np.float64)

    def with_guess(self, guess_t: Optional[np.ndarray]) -> "CIPTarget":
        """Same model, different perturbation guess (for adaptive attacks)."""
        return CIPTarget(self.module, self.num_classes, self.config, guess_t)

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        self.query_count += len(inputs)
        self.module.eval()
        outputs = []
        with no_grad():
            for start in range(0, len(inputs), 128):
                chunk = inputs[start : start + 128]
                blended = blend(chunk, self.guess_t, self.config.alpha, self.config.clip_range)
                outputs.append(self.module(blended).data)
        return np.concatenate(outputs, axis=0)

    def _forward_tensor(self, inputs: np.ndarray) -> Tensor:
        blended = blend(inputs, self.guess_t, self.config.alpha, self.config.clip_range)
        return self.module(blended)


@dataclass
class AttackData:
    """The attacker's calibration pools and the evaluation pools.

    ``known_*`` are used by ``fit`` (shadow/calibration knowledge);
    ``eval_*`` are the disjoint samples on which the attack is scored.
    """

    known_members: Dataset
    known_nonmembers: Dataset
    eval_members: Dataset
    eval_nonmembers: Dataset

    @staticmethod
    def from_pools(
        members: Dataset, nonmembers: Dataset, calibration_fraction: float = 0.5, seed=None
    ) -> "AttackData":
        """Split member/non-member pools into calibration and evaluation halves."""
        known_m, eval_m = members.split(calibration_fraction, seed=seed)
        known_n, eval_n = nonmembers.split(calibration_fraction, seed=seed)
        return AttackData(known_m, known_n, eval_m, eval_n)


class MIAttack:
    """Base class: fit on calibration pools, score evaluation samples."""

    name = "base"

    def fit(self, target: TargetModel, data: AttackData) -> None:
        """Calibrate the attack.  Default: no calibration."""

    def score(self, target: TargetModel, dataset: Dataset) -> np.ndarray:
        """Membership scores in [0, 1]; >= 0.5 predicts member."""
        raise NotImplementedError


@dataclass
class AttackReport:
    """Outcome of one attack evaluation (a Table-IV row)."""

    attack: str
    metrics: BinaryMetrics
    auc: float

    @property
    def accuracy(self) -> float:
        return self.metrics.accuracy


def evaluate_attack(attack: MIAttack, target: TargetModel, data: AttackData) -> AttackReport:
    """Fit on the calibration pools, evaluate on the held-out pools."""
    attack.fit(target, data)
    member_scores = attack.score(target, data.eval_members)
    nonmember_scores = attack.score(target, data.eval_nonmembers)
    scores = np.concatenate([member_scores, nonmember_scores])
    labels = np.concatenate(
        [np.ones(len(member_scores), dtype=int), np.zeros(len(nonmember_scores), dtype=int)]
    )
    predictions = scores >= 0.5
    return AttackReport(
        attack=attack.name,
        metrics=binary_metrics(predictions, labels),
        auc=roc_auc(scores, labels),
    )


def sigmoid(values: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function (score calibration helper)."""
    values = np.asarray(values, dtype=np.float64)
    out = np.empty_like(values)
    positive = values >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-values[positive]))
    exp_v = np.exp(values[~positive])
    out[~positive] = exp_v / (1.0 + exp_v)
    return out
