"""Experiment registry and result formatting."""

import pytest

from repro.experiments import (
    ExperimentResult,
    format_table,
    get_experiment,
    get_profile,
    list_experiments,
    run_experiment,
)
from repro.experiments.registry import register


EXPECTED_IDS = {
    "fig1",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
    "table9",
    "table10",
    "table11",
    "knowledge3",
    "theorem1",
    "memguard_fl",
    "ablation_dual_channel",
    "ablation_lambda_m",
    "ablation_shared_t",
}


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        ids = {spec.experiment_id for spec in list_experiments()}
        assert EXPECTED_IDS <= ids

    def test_specs_carry_paper_references(self):
        for spec in list_experiments():
            assert spec.paper_reference
            assert spec.title

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            get_experiment("table99")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register("table1", "dup", "dup")(lambda profile: None)

    def test_profiles(self):
        assert get_profile("quick").name == "quick"
        assert get_profile("smoke").fl_rounds < get_profile("full").fl_rounds
        with pytest.raises(ValueError):
            get_profile("turbo")

    def test_profile_epochs_scaling(self):
        profile = get_profile("smoke")
        assert profile.epochs(20) == max(1, round(20 * profile.epochs_scale))
        assert profile.epochs(1) >= 1


class TestResults:
    def test_add_row_and_column(self):
        result = ExperimentResult("x", "t", ["a", "b"])
        result.add_row(a=1, b=2.5)
        result.add_row(a=3, b=4.5)
        assert result.column("b") == [2.5, 4.5]

    def test_format_table_contains_everything(self):
        result = ExperimentResult("fig0", "demo", ["name", "value"])
        result.add_row(name="alpha", value=0.123456)
        result.add_note("a note")
        text = format_table(result)
        assert "fig0" in text
        assert "alpha" in text
        assert "0.123" in text
        assert "a note" in text

    def test_format_empty_table(self):
        result = ExperimentResult("e", "empty", ["col"])
        assert "col" in format_table(result)

    def test_render_ascii_series(self):
        from repro.experiments import render_ascii_series

        result = ExperimentResult("figx", "demo", ["alpha", "acc", "defense"])
        result.add_row(alpha=0.1, acc=0.9, defense="none")
        result.add_row(alpha=0.9, acc=0.5, defense="none")
        result.add_row(alpha=0.1, acc=0.52, defense="cip")
        text = render_ascii_series(result, "alpha", "acc", group_column="defense")
        assert "[defense=none]" in text
        assert "0.900" in text
        # the largest value gets the longest bar
        none_bar = next(l for l in text.splitlines() if "0.900" in l)
        cip_bar = next(l for l in text.splitlines() if "0.520" in l)
        assert none_bar.count("#") > cip_bar.count("#")

    def test_render_ascii_series_empty(self):
        from repro.experiments import render_ascii_series

        result = ExperimentResult("figy", "demo", ["x", "y"])
        assert "no numeric rows" in render_ascii_series(result, "x", "y")
