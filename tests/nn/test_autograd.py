"""Numerical gradient checks for every autograd op."""

import numpy as np
import pytest

from repro.nn import tensor as T
from repro.nn.tensor import Tensor, no_grad
from tests.conftest import check_gradient, numerical_gradient


class TestElementwiseGradients:
    def test_add(self):
        check_gradient(lambda x: (x + 3.0).sum(), (4, 5))

    def test_add_broadcast(self):
        rng = np.random.default_rng(1)
        other = rng.normal(size=(5,))
        check_gradient(lambda x: (x + Tensor(other)).sum(), (4, 5))

    def test_add_broadcast_into_small(self):
        rng = np.random.default_rng(2)
        big = Tensor(rng.normal(size=(4, 5)))
        check_gradient(lambda x: (x + big).sum(), (5,))

    def test_mul(self):
        check_gradient(lambda x: (x * x).sum(), (3, 4))

    def test_mul_broadcast(self):
        rng = np.random.default_rng(3)
        other = Tensor(rng.normal(size=(1, 4)))
        check_gradient(lambda x: (x * other).sum(), (3, 4))

    def test_div(self):
        check_gradient(lambda x: (1.0 / x).sum(), (3, 3), positive=True)

    def test_sub_and_neg(self):
        check_gradient(lambda x: (5.0 - x).sum(), (6,))

    def test_pow(self):
        check_gradient(lambda x: (x**3).sum(), (4,))

    def test_exp(self):
        check_gradient(lambda x: x.exp().sum(), (3, 3))

    def test_log(self):
        check_gradient(lambda x: x.log().sum(), (4,), positive=True)

    def test_sqrt(self):
        check_gradient(lambda x: x.sqrt().sum(), (4,), positive=True)

    def test_tanh(self):
        check_gradient(lambda x: x.tanh().sum(), (5,))

    def test_sigmoid(self):
        check_gradient(lambda x: x.sigmoid().sum(), (5,))

    def test_relu(self):
        # Keep values away from the kink.
        rng = np.random.default_rng(4)
        x = rng.normal(size=(20,))
        x = np.where(np.abs(x) < 0.1, 0.5, x)
        tensor = Tensor(x, requires_grad=True)
        tensor.relu().sum().backward()
        np.testing.assert_allclose(tensor.grad, (x > 0).astype(float))

    def test_abs(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(20,))
        x = np.where(np.abs(x) < 0.1, 0.5, x)
        tensor = Tensor(x, requires_grad=True)
        tensor.abs().sum().backward()
        np.testing.assert_allclose(tensor.grad, np.sign(x))

    def test_clip_passes_gradient_inside_range(self):
        x = np.array([-2.0, -0.5, 0.0, 0.5, 2.0])
        tensor = Tensor(x, requires_grad=True)
        tensor.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(tensor.grad, [0.0, 1.0, 1.0, 1.0, 0.0])


class TestMatmulGradients:
    def test_matrix_matrix(self):
        rng = np.random.default_rng(6)
        other = Tensor(rng.normal(size=(5, 2)))
        check_gradient(lambda x: (x @ other).sum(), (3, 5))

    def test_matrix_matrix_right(self):
        rng = np.random.default_rng(7)
        left = Tensor(rng.normal(size=(3, 5)))
        check_gradient(lambda x: (left @ x).sum(), (5, 2))

    def test_matrix_vector(self):
        rng = np.random.default_rng(8)
        v = Tensor(rng.normal(size=(5,)))
        check_gradient(lambda x: (x @ v).sum(), (3, 5))

    def test_vector_matrix(self):
        rng = np.random.default_rng(9)
        m = Tensor(rng.normal(size=(5, 3)))
        check_gradient(lambda x: (x @ m).sum(), (5,))

    def test_vector_vector(self):
        rng = np.random.default_rng(10)
        v = Tensor(rng.normal(size=(5,)))
        check_gradient(lambda x: x @ v, (5,))
        check_gradient(lambda x: Tensor(np.arange(5.0)) @ x, (5,))


class TestReductionGradients:
    def test_sum_all(self):
        check_gradient(lambda x: x.sum(), (3, 4))

    def test_sum_axis(self):
        check_gradient(lambda x: (x.sum(axis=0) ** 2).sum(), (3, 4))

    def test_sum_keepdims(self):
        check_gradient(lambda x: (x.sum(axis=1, keepdims=True) * x).sum(), (3, 4))

    def test_mean(self):
        check_gradient(lambda x: (x.mean(axis=(0, 2)) ** 2).sum(), (2, 3, 4))

    def test_max_all(self):
        rng = np.random.default_rng(11)
        x = rng.permutation(20).astype(float).reshape(4, 5)  # unique values
        tensor = Tensor(x, requires_grad=True)
        tensor.max().backward()
        expected = (x == x.max()).astype(float)
        np.testing.assert_allclose(tensor.grad, expected)

    def test_max_axis(self):
        rng = np.random.default_rng(12)
        x = rng.permutation(20).astype(float).reshape(4, 5)
        tensor = Tensor(x, requires_grad=True)
        tensor.max(axis=1).sum().backward()
        expected = (x == x.max(axis=1, keepdims=True)).astype(float)
        np.testing.assert_allclose(tensor.grad, expected)

    def test_max_ties_split_gradient(self):
        x = np.array([[1.0, 1.0, 0.0]])
        tensor = Tensor(x, requires_grad=True)
        tensor.max(axis=1).sum().backward()
        np.testing.assert_allclose(tensor.grad, [[0.5, 0.5, 0.0]])

    def test_max_ties_split_gradient_negative_axis(self):
        x = np.array([[2.0, 2.0, 2.0], [0.0, 5.0, 5.0]])
        tensor = Tensor(x, requires_grad=True)
        tensor.max(axis=-1).sum().backward()
        np.testing.assert_allclose(
            tensor.grad, [[1 / 3, 1 / 3, 1 / 3], [0.0, 0.5, 0.5]]
        )

    def test_var(self):
        check_gradient(lambda x: x.var(axis=0).sum(), (6, 3))


class TestShapeGradients:
    def test_reshape(self):
        check_gradient(lambda x: (x.reshape(2, 6) ** 2).sum(), (3, 4))

    def test_transpose(self):
        check_gradient(lambda x: (x.transpose(1, 0, 2) ** 2).sum(), (2, 3, 4))

    def test_transpose_negative_axes(self):
        # Regression: argsort on raw negative axes produced the wrong
        # inverse permutation, so the gradient came back wrongly permuted
        # (or wrongly shaped when the dims differ).  The weight makes the
        # objective sensitive to the permutation, unlike (x.T ** 2).sum().
        rng = np.random.default_rng(16)
        w = Tensor(rng.normal(size=(4, 2, 3)))
        check_gradient(lambda x: ((x.transpose(-1, 0, 1) * w) ** 2).sum(), (2, 3, 4))

    def test_transpose_negative_axes_square_dims(self):
        # Coinciding dims: the pre-fix bug corrupted values silently
        # instead of crashing.  Verify the gradient element-for-element.
        rng = np.random.default_rng(17)
        w = rng.normal(size=(3, 3, 3))
        x = Tensor(rng.normal(size=(3, 3, 3)), requires_grad=True)
        (x.transpose(-1, 0, 1) * Tensor(w)).sum().backward()
        np.testing.assert_allclose(x.grad, w.transpose(1, 2, 0))

    def test_getitem(self):
        check_gradient(lambda x: (x[1:, :2] ** 2).sum(), (3, 4))

    def test_getitem_repeated_indices(self):
        x = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        x[np.array([0, 0, 1])].sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 1.0, 0.0])

    def test_getitem_preserves_float32_gradient(self):
        x = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
        out = x[1:3].sum()
        out.backward()
        assert x.grad is not None and x.grad.shape == (4,)

    def test_pad(self):
        check_gradient(lambda x: (x.pad([(1, 1), (2, 0)]) ** 2).sum(), (3, 4))

    def test_concatenate(self):
        rng = np.random.default_rng(13)
        other = Tensor(rng.normal(size=(2, 4)))
        check_gradient(lambda x: (T.concatenate([x, other], axis=0) ** 2).sum(), (3, 4))

    def test_stack(self):
        rng = np.random.default_rng(14)
        other = Tensor(rng.normal(size=(3, 4)))
        check_gradient(lambda x: (T.stack([x, other], axis=0) ** 2).sum(), (3, 4))

    def test_where(self):
        cond = np.array([[True, False], [False, True]])
        rng = np.random.default_rng(15)
        other = Tensor(rng.normal(size=(2, 2)))
        check_gradient(lambda x: T.where(cond, x, other).sum(), (2, 2))


class TestGraphMechanics:
    def test_gradient_accumulates_over_reuse(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * x + x * 3.0  # x used twice
        y.backward()
        np.testing.assert_allclose(x.grad, [7.0])  # 2x + 3

    def test_diamond_graph(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        a = x * 2.0
        b = x + 1.0
        out = a * b  # d/dx (2x(x+1)) = 4x + 2
        out.backward()
        np.testing.assert_allclose(x.grad, [14.0])

    def test_deep_chain(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x
        for _ in range(50):
            y = y * 1.1
        y.backward()
        np.testing.assert_allclose(x.grad, [1.1**50], rtol=1e-10)

    def test_no_grad_blocks_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad
        with pytest.raises(RuntimeError):
            y.backward()

    def test_backward_requires_scalar_or_grad(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()
        (x * 2).backward(np.ones((2, 2)))
        np.testing.assert_allclose(x.grad, 2 * np.ones((2, 2)))

    def test_detach_cuts_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = (x * 2.0).detach()
        assert not y.requires_grad

    def test_zero_grad(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 2).sum().backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None

    def test_non_differentiable_comparisons(self):
        x = Tensor(np.array([1.0, -1.0]), requires_grad=True)
        assert isinstance(x > 0, np.ndarray)
        assert (x > 0).tolist() == [True, False]
        assert (x <= 0).tolist() == [False, True]

    def test_int_data_promoted_when_requires_grad(self):
        x = Tensor(np.array([1, 2, 3]), requires_grad=True)
        assert np.issubdtype(x.dtype, np.floating)
