"""Small wall-clock timing helper used by the experiment harness."""

from __future__ import annotations

import time
from typing import Dict, Optional


class Timer:
    """Accumulating stopwatch with named sections.

    >>> timer = Timer()
    >>> with timer.section("train"):
    ...     pass
    >>> timer.total("train") >= 0.0
    True
    """

    def __init__(self) -> None:
        self._totals: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}

    def section(self, name: str) -> "_Section":
        return _Section(self, name)

    def add(self, name: str, elapsed: float) -> None:
        self._totals[name] = self._totals.get(name, 0.0) + elapsed
        self._counts[name] = self._counts.get(name, 0) + 1

    def total(self, name: str) -> float:
        return self._totals.get(name, 0.0)

    def count(self, name: str) -> int:
        return self._counts.get(name, 0)

    def mean(self, name: str) -> float:
        count = self._counts.get(name, 0)
        if count == 0:
            return 0.0
        return self._totals[name] / count

    def summary(self) -> Dict[str, float]:
        return dict(self._totals)


class Stopwatch:
    """One-shot wall-clock measurement of a ``with`` block.

    >>> with Stopwatch() as watch:
    ...     pass
    >>> watch.elapsed >= 0.0
    True

    The FL round executors use this for the per-round / per-client timing
    recorded in :class:`repro.fl.simulation.FLHistory`.
    """

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._start: Optional[float] = None

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start
        self._start = None


class _Section:
    def __init__(self, timer: Timer, name: str) -> None:
        self._timer = timer
        self._name = name
        self._start: Optional[float] = None

    def __enter__(self) -> "_Section":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._start is not None
        self._timer.add(self._name, time.perf_counter() - self._start)
