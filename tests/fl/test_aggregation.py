"""FedAvg aggregation algebra."""

import numpy as np
import pytest

from repro.fl.aggregation import apply_delta, fedavg, flatten_state, state_delta


def make_states():
    a = {"w": np.array([1.0, 2.0]), "b": np.array([0.0])}
    b = {"w": np.array([3.0, 4.0]), "b": np.array([2.0])}
    return a, b


class TestFedAvg:
    def test_uniform_average(self):
        a, b = make_states()
        merged = fedavg([a, b])
        np.testing.assert_allclose(merged["w"], [2.0, 3.0])
        np.testing.assert_allclose(merged["b"], [1.0])

    def test_weighted_average_normalizes(self):
        a, b = make_states()
        merged = fedavg([a, b], weights=[30, 10])  # raw sample counts
        np.testing.assert_allclose(merged["w"], 0.75 * a["w"] + 0.25 * b["w"])

    def test_single_state_identity(self):
        a, _ = make_states()
        merged = fedavg([a])
        np.testing.assert_allclose(merged["w"], a["w"])

    def test_linearity(self):
        """FedAvg of k copies of the same state is that state."""
        a, _ = make_states()
        merged = fedavg([a, a, a])
        np.testing.assert_allclose(flatten_state(merged), flatten_state(a))

    def test_validation(self):
        a, b = make_states()
        with pytest.raises(ValueError):
            fedavg([])
        with pytest.raises(ValueError):
            fedavg([a, b], weights=[1.0])
        with pytest.raises(ValueError):
            fedavg([a, b], weights=[-1.0, 2.0])
        with pytest.raises(ValueError):
            fedavg([a, {"w": np.zeros(2)}])  # key mismatch


class TestDeltas:
    def test_delta_and_apply_round_trip(self):
        a, b = make_states()
        delta = state_delta(b, a)
        restored = apply_delta(a, delta)
        np.testing.assert_allclose(flatten_state(restored), flatten_state(b))

    def test_apply_delta_scaled(self):
        a, b = make_states()
        delta = state_delta(b, a)
        half = apply_delta(a, delta, scale=0.5)
        np.testing.assert_allclose(half["w"], [2.0, 3.0])

    def test_key_mismatch(self):
        a, _ = make_states()
        with pytest.raises(ValueError):
            state_delta(a, {"x": np.zeros(1)})
        with pytest.raises(ValueError):
            apply_delta(a, {"x": np.zeros(1)})

    def test_flatten_is_sorted_and_stable(self):
        a, _ = make_states()
        flat = flatten_state(a)
        np.testing.assert_allclose(flat, [0.0, 1.0, 2.0])  # 'b' before 'w'
