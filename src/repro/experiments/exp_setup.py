"""Tables I and II: target-model setups (legacy accuracies).

Table I trains the legacy (no-defense) model for each (architecture,
#clients) federation on CIFAR-100 and reports train/test accuracy; Table II
does the same for the single-client external setting on all four datasets.
The reproduction's absolute accuracies differ from the paper's (synthetic
data, mini backbones) but the orderings — overfit CIFAR-100, well-trained
CH-MNIST — are the properties later experiments rely on.
"""

from __future__ import annotations

from repro.data.benchmarks import default_training
from repro.data.partition import partition_by_classes
from repro.experiments.common import get_bundle, run_federated, train_legacy
from repro.experiments.profiles import Profile
from repro.experiments.registry import register
from repro.experiments.results import ExperimentResult
from repro.fl.client import ClientConfig, FLClient
from repro.fl.server import FLServer
from repro.fl.training import evaluate_model
from repro.nn.models import build_model
from repro.utils.rng import derive_rng

ARCHITECTURES = ("resnet", "densenet", "vgg")
NONIID_CLASSES = 8  # of 20 synthetic CIFAR classes (paper: 20 of 100)


def build_federation(
    bundle,
    num_clients: int,
    architecture: str,
    profile: Profile,
    seed: int = 0,
    classes_per_client: int = NONIID_CLASSES,
    lr: float = 5e-2,
):
    """Standard (no-defense) federation on a non-i.i.d. partition."""
    shards = partition_by_classes(
        bundle.train, num_clients, classes_per_client, seed=derive_rng(seed, "part")
    )
    factory = lambda: build_model(  # noqa: E731
        architecture,
        bundle.num_classes,
        in_channels=bundle.train.inputs.shape[1],
        seed=derive_rng(seed, "model", architecture),
    )
    server = FLServer(factory)
    clients = [
        FLClient(i, shards[i], factory, ClientConfig(lr=lr), seed=derive_rng(seed, "client", i))
        for i in range(num_clients)
    ]
    return server, clients, shards


@register("table1", "Internal setup: legacy model accuracies", "Table I")
def table1(profile: Profile) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="table1",
        title="Legacy (no defense) federated models on synthetic CIFAR-100",
        columns=["model", "clients", "rounds", "train_acc", "test_acc"],
    )
    bundle = get_bundle("cifar100", profile)
    for architecture in ARCHITECTURES:
        for num_clients in profile.client_counts:
            rounds = profile.fl_rounds
            server, clients, shards = build_federation(
                bundle, num_clients, architecture, profile
            )
            sim = run_federated(server, clients, rounds)
            train_acc = sum(
                evaluate_model(server.model, shard).accuracy for shard in shards
            ) / num_clients
            test_acc = evaluate_model(server.model, bundle.test).accuracy
            result.add_row(
                model=architecture,
                clients=num_clients,
                rounds=rounds,
                train_acc=train_acc,
                test_acc=test_acc,
            )
    result.add_note(
        "paper trains 120-3000 rounds on real CIFAR-100; rounds scaled to the profile"
    )
    return result


@register("table2", "External setup: legacy model accuracies per dataset", "Table II")
def table2(profile: Profile) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="table2",
        title="Legacy (no defense) single-client models, all datasets",
        columns=["dataset", "model", "epochs", "train_acc", "test_acc"],
    )
    for dataset in ("cifar100", "cifar_aug", "chmnist", "purchase50"):
        artifact = train_legacy(dataset, profile)
        recipe = default_training(dataset)
        train_eval = evaluate_model(artifact.model, artifact.bundle.train)
        test_eval = evaluate_model(artifact.model, artifact.bundle.test)
        result.add_row(
            dataset=dataset,
            model=artifact.architecture,
            epochs=profile.epochs(recipe.epochs),
            train_acc=train_eval.accuracy,
            test_acc=test_eval.accuracy,
        )
    result.add_note("paper: CIFAR-100 overfit (test 0.323), CH-MNIST well trained (0.899)")
    return result
