"""Figure 1 and Theorem 1: motivation and theory checks.

Figure 1 contrasts the member/non-member loss distributions on the original
model (clearly separated) against the CIP-shifted model (overlapping, as an
adversary without ``t`` sees it).  The result rows carry the distribution
summary statistics; the bench also renders the ASCII densities.

The Theorem-1 experiment measures the epsilon ratio on a trained CIP model:
losses under the true ``t`` vs a guessed ``t'`` on the same member samples.
"""

from __future__ import annotations

import numpy as np

from repro.core.blending import blend_arrays
from repro.core.theory import check_theorem1
from repro.core.trainer import predict_logits_with_perturbation
from repro.experiments.common import attack_pools, get_bundle, train_cip, train_legacy
from repro.experiments.profiles import Profile
from repro.experiments.registry import register
from repro.experiments.results import ExperimentResult
from repro.fl.training import predict_logits
from repro.metrics.distribution import overlap_coefficient, separability_gap
from repro.nn.losses import per_sample_cross_entropy
from repro.utils.rng import derive_rng

FIG1_ALPHA = 0.5


def member_nonmember_losses(profile: Profile, defended: bool):
    """Per-sample losses for members and non-members, with/without CIP."""
    if defended:
        artifact = train_cip("cifar100", FIG1_ALPHA, profile)
        bundle = artifact.bundle
        # The adversary's view: zero-perturbation blend.
        member_logits = predict_logits_with_perturbation(
            artifact.model, None, bundle.train.inputs, artifact.config
        )
        nonmember_logits = predict_logits_with_perturbation(
            artifact.model, None, bundle.test.inputs, artifact.config
        )
    else:
        artifact = train_legacy("cifar100", profile)
        bundle = artifact.bundle
        member_logits = predict_logits(artifact.model, bundle.train.inputs)
        nonmember_logits = predict_logits(artifact.model, bundle.test.inputs)
    member_losses = per_sample_cross_entropy(member_logits, bundle.train.labels)
    nonmember_losses = per_sample_cross_entropy(nonmember_logits, bundle.test.labels)
    return member_losses, nonmember_losses


@register("fig1", "Member vs non-member loss distributions", "Figure 1")
def fig1(profile: Profile) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig1",
        title="Loss-distribution shift by CIP (synthetic CIFAR-100)",
        columns=[
            "model",
            "member_mean_loss",
            "nonmember_mean_loss",
            "separability_gap",
            "overlap_coefficient",
        ],
    )
    for defended, label in ((False, "original"), (True, "cip_shifted")):
        member_losses, nonmember_losses = member_nonmember_losses(profile, defended)
        result.add_row(
            model=label,
            member_mean_loss=float(member_losses.mean()),
            nonmember_mean_loss=float(nonmember_losses.mean()),
            separability_gap=separability_gap(member_losses, nonmember_losses),
            overlap_coefficient=overlap_coefficient(member_losses, nonmember_losses),
        )
    result.add_note(
        "paper Figure 1: separable densities on the original model, overlapping after CIP"
    )
    return result


@register("theorem1", "Adaptive adversarial advantage bound", "Theorem 1")
def theorem1(profile: Profile) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="theorem1",
        title="Theorem 1: eps = exp(-(l(z_t') - l(z_t))/T) <= 1 on a trained model",
        columns=[
            "guess",
            "mean_loss_true_t",
            "mean_loss_guessed_t",
            "mean_epsilon",
            "fraction_bounded",
            "assumption_holds",
        ],
    )
    artifact = train_cip("cifar100", 0.5, profile)
    bundle = artifact.bundle
    members = bundle.train.take(min(len(bundle.train), 2 * profile.attack_pool))
    true_t = artifact.perturbation.value

    loss_true = per_sample_cross_entropy(
        predict_logits_with_perturbation(
            artifact.model, true_t, members.inputs, artifact.config
        ),
        members.labels,
    )
    rng = derive_rng(0, "theorem1")
    guesses = {
        "zero": None,
        "random": rng.uniform(0.0, 1.0, size=true_t.shape),
        "noisy_true": np.clip(true_t + rng.normal(0, 0.25, size=true_t.shape), 0, 1),
    }
    for label, guess in guesses.items():
        loss_guess = per_sample_cross_entropy(
            predict_logits_with_perturbation(
                artifact.model, guess, members.inputs, artifact.config
            ),
            members.labels,
        )
        check = check_theorem1(loss_true, loss_guess, temperature=1.0)
        result.add_row(
            guess=label,
            mean_loss_true_t=check.mean_loss_true_t,
            mean_loss_guessed_t=check.mean_loss_guessed_t,
            mean_epsilon=check.mean_epsilon,
            fraction_bounded=check.fraction_bounded,
            assumption_holds=check.assumption_holds,
        )
    result.add_note("epsilon <= 1 whenever the guessed-t loss exceeds the true-t loss")
    return result
