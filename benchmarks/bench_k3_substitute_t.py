"""[RQ4 Knowledge-3] A malicious client attacks with its own perturbation t'.

Paper (i.i.d. CIFAR-100): t' achieves good *test* accuracy on the victim's
model (0.695 vs 0.666 with the true t) yet the attack fails (0.535), because
the train/test gap only exists under the true t (train acc 0.991 with t vs
0.722 with t').  Shape checks: the same orderings hold.
"""

from benchmarks.conftest import run_and_report


def test_k3_substitute_t(benchmark, profile):
    result = run_and_report(benchmark, "knowledge3", profile)
    row = result.rows[0]
    # the victim's own t fits its training data better than the substitute
    assert row["train_acc_true_t"] >= row["train_acc_substitute_t"] - 0.05
    # the attack with t' stays weak
    assert row["attack_acc"] < 0.75
    assert -1.0 <= row["ssim_t_tprime"] <= 1.0
