"""Differentiable neural-network operations built on :class:`~repro.nn.tensor.Tensor`.

Convolution and pooling are implemented with im2col/col2im so the heavy
lifting happens inside a single BLAS matmul per layer — the only way a NumPy
conv net stays usable on CPU.  All layouts are NCHW.

The array machinery (im2col/col2im, window extraction, the conv GEMMs)
lives in the active :class:`~repro.nn.backend.ArrayBackend`; this module
owns only the autograd wiring around it.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.backend import conv_output_size as _conv_output_size
from repro.nn.backend import get_backend
from repro.nn.tensor import Tensor, _unbroadcast, is_grad_enabled

#: Op entry points instrumented by :mod:`repro.nn.diagnostics` when op
#: profiling is enabled.  Composite ops (conv2d runs pad/matmul/reshape
#: internally) report *exclusive* time, so their internals are not listed.
PROFILED_OPS = (
    "conv2d",
    "conv2d_grouped",
    "fused_conv2d_relu",
    "fused_linear_relu",
    "max_pool2d",
    "avg_pool2d",
    "log_softmax",
    "softmax",
    "dropout",
)


# ----------------------------------------------------------------------
# im2col machinery (delegated to the active backend)
# ----------------------------------------------------------------------
def im2col(
    images: np.ndarray, kernel: int, stride: int, padding: int
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Unfold NCHW images into a ``(N*OH*OW, C*KH*KW)`` matrix.

    Returns the matrix and the output spatial size ``(OH, OW)``.
    """
    return get_backend().im2col(images, kernel, stride, padding)


def col2im(
    cols: np.ndarray,
    image_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold a ``(N*OH*OW, C*KH*KW)`` matrix back into NCHW images (adjoint of im2col)."""
    return get_backend().col2im(cols, image_shape, kernel, stride, padding)


# ----------------------------------------------------------------------
# Convolution
# ----------------------------------------------------------------------
def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D convolution. ``x``: (N,C,H,W); ``weight``: (O,C,K,K); ``bias``: (O,)."""
    out_channels, in_channels, kernel, kernel_w = weight.shape
    if kernel != kernel_w:
        raise ValueError("only square kernels are supported")
    if x.shape[1] != in_channels:
        raise ValueError(
            f"input has {x.shape[1]} channels but weight expects {in_channels}"
        )
    # The backward runs on the backend that did the forward: the column
    # cache belongs to that backend's workspace pool.
    backend = get_backend()
    w_mat = weight.data.reshape(out_channels, -1)  # (O, C*K*K)
    out_data, cols = backend.conv2d_forward(
        x.data, w_mat, None if bias is None else bias.data, kernel, stride, padding
    )

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray) -> None:
        nonlocal cols
        if cols is None:
            raise RuntimeError(
                "conv2d backward ran twice on a graph built by the "
                f"{backend.name!r} backend; its column cache is recycled "
                "inside the first backward, so the graph is single-shot"
            )
        grad_x, grad_w, grad_b = backend.conv2d_backward(
            grad,
            cols,
            w_mat,
            x.shape,
            kernel,
            stride,
            padding,
            need_x=x.requires_grad,
            need_weight=weight.requires_grad,
            need_bias=bias is not None and bias.requires_grad,
        )
        if backend.recycles_workspaces:
            cols = None
        if grad_w is not None:
            weight._accumulate(grad_w.reshape(weight.shape))
        if grad_b is not None:
            bias._accumulate(grad_b)
        if grad_x is not None:
            x._accumulate(grad_x)

    return x._make(out_data, parents, backward, "conv2d")


def fused_conv2d_relu(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """Fused ``relu(conv2d(x, weight, bias))`` in one backend primitive.

    Runs the exact float sequence of :func:`conv2d` followed by
    ``Tensor.relu`` (the activation is ``pre * (pre > 0)`` and the backward
    masks the upstream gradient before the conv VJPs), so fusing is bitwise
    neutral while saving one graph node and one Python dispatch per layer.
    Like :func:`conv2d`, graphs built on a workspace-recycling backend are
    single-shot.
    """
    out_channels, in_channels, kernel, kernel_w = weight.shape
    if kernel != kernel_w:
        raise ValueError("only square kernels are supported")
    if x.shape[1] != in_channels:
        raise ValueError(
            f"input has {x.shape[1]} channels but weight expects {in_channels}"
        )
    backend = get_backend()
    w_mat = weight.data.reshape(out_channels, -1)
    out_data, cols = backend.conv2d_relu_forward(
        x.data, w_mat, None if bias is None else bias.data, kernel, stride, padding
    )

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray) -> None:
        nonlocal cols
        if cols is None:
            raise RuntimeError(
                "fused_conv2d_relu backward ran twice on a graph built by "
                f"the {backend.name!r} backend; its column cache is recycled "
                "inside the first backward, so the graph is single-shot"
            )
        grad_x, grad_w, grad_b = backend.conv2d_relu_backward(
            grad,
            out_data,
            cols,
            w_mat,
            x.shape,
            kernel,
            stride,
            padding,
            need_x=x.requires_grad,
            need_weight=weight.requires_grad,
            need_bias=bias is not None and bias.requires_grad,
        )
        if backend.recycles_workspaces:
            cols = None
        if grad_w is not None:
            weight._accumulate(grad_w.reshape(weight.shape))
        if grad_b is not None:
            bias._accumulate(grad_b)
        if grad_x is not None:
            x._accumulate(grad_x)

    return x._make(out_data, parents, backward, "fused_conv2d_relu")


def fused_linear_relu(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Fused ``relu(x @ weight + bias)`` in one backend primitive.

    Accepts the standard ``(N, F) @ (F, O)`` layout and the client-stacked
    ``(K, N, F) @ (K, F, O)`` layout used by the batched executor (``bias``
    then shaped ``(K, 1, O)``).  The float sequence — matmul, broadcast
    add, ``pre * (pre > 0)`` — and the backward's un-broadcast reductions
    match the unfused ``x @ w + b`` / ``relu`` graph bitwise.
    """
    backend = get_backend()
    out_data = backend.linear_relu_forward(
        x.data, weight.data, None if bias is None else bias.data
    )

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray) -> None:
        grad_x, grad_w, grad_pre = backend.linear_relu_backward(
            grad,
            out_data,
            x.data,
            weight.data,
            need_x=x.requires_grad,
            need_weight=weight.requires_grad,
        )
        if grad_w is not None:
            weight._accumulate(_unbroadcast(grad_w, weight.shape))
        if bias is not None and bias.requires_grad:
            bias._accumulate(_unbroadcast(grad_pre, bias.shape))
        if grad_x is not None:
            x._accumulate(_unbroadcast(grad_x, x.shape))

    return x._make(out_data, parents, backward, "fused_linear_relu")


def conv2d_grouped(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
    relu: bool = False,
) -> Tensor:
    """Per-group convolution over a client-major folded batch.

    ``x``: ``(G*N, C, H, W)`` — group ``g``'s samples occupy rows
    ``g*N:(g+1)*N``; ``weight``: ``(G, O, C, K, K)``; ``bias``: ``(G, O)``.
    Each group is convolved with its own kernels via one grouped im2col and
    one batched GEMM, producing output bitwise identical to G independent
    :func:`conv2d` calls.  ``relu=True`` fuses the activation.  Graphs
    built on a workspace-recycling backend are single-shot.
    """
    groups, out_channels, in_channels, kernel, kernel_w = weight.shape
    if kernel != kernel_w:
        raise ValueError("only square kernels are supported")
    if x.shape[0] % groups != 0:
        raise ValueError(
            f"folded batch of {x.shape[0]} does not divide into {groups} groups"
        )
    if x.shape[1] != in_channels:
        raise ValueError(
            f"input has {x.shape[1]} channels but weight expects {in_channels}"
        )
    backend = get_backend()
    w_mat3 = weight.data.reshape(groups, out_channels, -1)  # (G, O, C*K*K)
    out_data, cols3 = backend.grouped_conv2d_forward(
        x.data,
        w_mat3,
        None if bias is None else bias.data,
        kernel,
        stride,
        padding,
        relu=relu,
    )

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray) -> None:
        nonlocal cols3
        if cols3 is None:
            raise RuntimeError(
                "conv2d_grouped backward ran twice on a graph built by the "
                f"{backend.name!r} backend; its column cache is recycled "
                "inside the first backward, so the graph is single-shot"
            )
        grad_x, grad_w, grad_b = backend.grouped_conv2d_backward(
            grad,
            out_data if relu else None,
            cols3,
            w_mat3,
            x.shape,
            kernel,
            stride,
            padding,
            need_x=x.requires_grad,
            need_weight=weight.requires_grad,
            need_bias=bias is not None and bias.requires_grad,
            relu=relu,
        )
        if backend.recycles_workspaces:
            cols3 = None
        if grad_w is not None:
            weight._accumulate(grad_w.reshape(weight.shape))
        if grad_b is not None:
            bias._accumulate(grad_b)
        if grad_x is not None:
            x._accumulate(grad_x)

    return x._make(out_data, parents, backward, "conv2d_grouped")


# ----------------------------------------------------------------------
# Pooling
# ----------------------------------------------------------------------
def max_pool2d(x: Tensor, kernel: int, stride: Optional[int] = None) -> Tensor:
    """Max pooling with square windows (no padding)."""
    stride = stride or kernel
    batch, channels, height, width = x.shape
    out_h = _conv_output_size(height, kernel, stride, 0)
    out_w = _conv_output_size(width, kernel, stride, 0)
    view = get_backend().pool_windows(x.data, kernel, stride, out_h, out_w)
    windows = view.reshape(batch, channels, out_h, out_w, kernel * kernel)
    arg = windows.argmax(axis=-1)
    out_data = np.take_along_axis(windows, arg[..., None], axis=-1)[..., 0]

    def backward(grad: np.ndarray) -> None:
        # Allocate in the input's dtype so a float32 compute path is not
        # silently upcast to float64 by its pooling gradients.
        grad_windows = np.zeros(
            (batch, channels, out_h, out_w, kernel * kernel), dtype=x.data.dtype
        )
        np.put_along_axis(grad_windows, arg[..., None], grad[..., None], axis=-1)
        grad_windows = grad_windows.reshape(batch, channels, out_h, out_w, kernel, kernel)
        full = np.zeros(x.shape, dtype=x.data.dtype)
        for kh in range(kernel):
            for kw in range(kernel):
                full[:, :, kh : kh + stride * out_h : stride, kw : kw + stride * out_w : stride] += grad_windows[
                    :, :, :, :, kh, kw
                ]
        x._accumulate(full)

    return x._make(out_data, (x,), backward, "max_pool2d")


def avg_pool2d(x: Tensor, kernel: int, stride: Optional[int] = None) -> Tensor:
    """Average pooling with square windows (no padding)."""
    stride = stride or kernel
    batch, channels, height, width = x.shape
    out_h = _conv_output_size(height, kernel, stride, 0)
    out_w = _conv_output_size(width, kernel, stride, 0)
    view = get_backend().pool_windows(x.data, kernel, stride, out_h, out_w)
    out_data = view.mean(axis=(4, 5))
    scale = 1.0 / (kernel * kernel)

    def backward(grad: np.ndarray) -> None:
        full = np.zeros(x.shape, dtype=x.data.dtype)
        scaled = grad * scale
        for kh in range(kernel):
            for kw in range(kernel):
                full[:, :, kh : kh + stride * out_h : stride, kw : kw + stride * out_w : stride] += scaled
        x._accumulate(full)

    return x._make(out_data, (x,), backward, "avg_pool2d")


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Global average pooling: (N,C,H,W) -> (N,C)."""
    return x.mean(axis=(2, 3))


# ----------------------------------------------------------------------
# Softmax / log-softmax / one-hot
# ----------------------------------------------------------------------
def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax with a fused backward pass."""
    backend = get_backend()
    shifted = logits.data - logits.data.max(axis=axis, keepdims=True)
    log_z = backend.log(backend.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_z
    softmax_data = backend.exp(out_data)

    def backward(grad: np.ndarray) -> None:
        logits._accumulate(grad - softmax_data * grad.sum(axis=axis, keepdims=True))

    return logits._make(out_data, (logits,), backward, "log_softmax")


def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax with a fused backward pass."""
    shifted = logits.data - logits.data.max(axis=axis, keepdims=True)
    exp = get_backend().exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        inner = (grad * out_data).sum(axis=axis, keepdims=True)
        logits._accumulate(out_data * (grad - inner))

    return logits._make(out_data, (logits,), backward, "softmax")


def one_hot(
    labels: np.ndarray, num_classes: int, dtype: Optional[np.dtype] = None
) -> np.ndarray:
    """Plain (non-differentiable) one-hot encoding of an int label vector.

    ``dtype`` defaults to float64 for backwards compatibility; callers on a
    float32 compute path should pass the dtype of the tensor the encoding
    will be combined with, so the target does not upcast the whole loss.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if labels.min(initial=0) < 0 or (labels.size and labels.max() >= num_classes):
        raise ValueError("labels out of range for one_hot")
    out = np.zeros(
        (labels.shape[0], num_classes),
        dtype=np.float64 if dtype is None else dtype,
    )
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def dropout(x: Tensor, rate: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: scales at train time so inference is identity."""
    if not training or rate <= 0.0:
        return x
    if not 0.0 <= rate < 1.0:
        raise ValueError("dropout rate must be in [0, 1)")
    keep = 1.0 - rate
    # Mask in the input's dtype: a float64 mask would upcast float32 data.
    mask = ((rng.random(x.shape) < keep) / keep).astype(x.data.dtype, copy=False)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * mask)

    return x._make(x.data * mask, (x,), backward, "dropout")


# Wrap the profiled entry points once, at module-definition time, so every
# importer — including `from repro.nn.functional import log_softmax`-style
# by-value imports (losses, defenses) — gets the instrumented callable.
# The wrapper is a no-op passthrough while op profiling is disabled.
from repro.nn import diagnostics as _diagnostics  # noqa: E402  (needs the ops above)

for _name in PROFILED_OPS:
    globals()[_name] = _diagnostics.timed_op(_name, globals()[_name])
del _name
