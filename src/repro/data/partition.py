"""Client data partitioning for federated learning.

Implements the paper's default non-i.i.d. scheme (Section V-A, following
Naseri et al.): each client is assigned ``classes_per_client`` random classes
and draws its equally-sized local dataset uniformly at random from samples of
those classes.  ``classes_per_client == num_classes`` recovers the i.i.d.
setting, which is how the Table III heterogeneity sweep spans
non-i.i.d. -> i.i.d.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.data.dataset import Dataset
from repro.utils.rng import SeedLike, derive_rng


def partition_iid(dataset: Dataset, num_clients: int, seed: SeedLike = None) -> List[Dataset]:
    """Shuffle and deal the dataset into ``num_clients`` equal shards."""
    if num_clients <= 0:
        raise ValueError("num_clients must be positive")
    rng = derive_rng(seed, "iid")
    order = rng.permutation(len(dataset))
    shard = len(dataset) // num_clients
    if shard == 0:
        raise ValueError("fewer samples than clients")
    return [
        dataset.subset(order[i * shard : (i + 1) * shard]) for i in range(num_clients)
    ]


def partition_by_classes(
    dataset: Dataset,
    num_clients: int,
    classes_per_client: int,
    seed: SeedLike = None,
    samples_per_client: int = 0,
) -> List[Dataset]:
    """Naseri-style non-i.i.d. partition.

    Each client receives ``classes_per_client`` classes chosen uniformly at
    random (without replacement within a client) and ``samples_per_client``
    samples drawn uniformly from those classes.  All clients get the same
    amount of data (paper Section V-A); by default that is
    ``len(dataset) // num_clients``.

    Samples are drawn *with replacement across clients* — two clients sharing
    a class may share samples — matching the paper's "selected uniformly at
    random from the chosen classes" description.
    """
    if classes_per_client <= 0 or classes_per_client > dataset.num_classes:
        raise ValueError("classes_per_client out of range")
    if samples_per_client <= 0:
        samples_per_client = len(dataset) // num_clients
    if samples_per_client == 0:
        raise ValueError("fewer samples than clients")

    by_class = [np.nonzero(dataset.labels == k)[0] for k in range(dataset.num_classes)]
    available = [k for k, idx in enumerate(by_class) if len(idx)]
    if classes_per_client > len(available):
        raise ValueError("not enough non-empty classes for the requested partition")

    shards: List[Dataset] = []
    for client in range(num_clients):
        rng = derive_rng(seed, "noniid", client)
        chosen_classes = rng.choice(available, size=classes_per_client, replace=False)
        pool = np.concatenate([by_class[k] for k in chosen_classes])
        take = rng.choice(pool, size=samples_per_client, replace=len(pool) < samples_per_client)
        shards.append(dataset.subset(take))
    return shards


def heterogeneity_emd(shards: List[Dataset]) -> float:
    """Mean pairwise L1 distance between clients' label distributions.

    A scalar summary of partition heterogeneity: 0 for identical label
    mixes, approaching 2 for disjoint ones.  Used in tests to verify that
    fewer classes per client means a more heterogeneous partition.
    """
    if len(shards) < 2:
        return 0.0
    distributions = []
    for shard in shards:
        counts = shard.class_counts().astype(np.float64)
        distributions.append(counts / max(counts.sum(), 1.0))
    total = 0.0
    pairs = 0
    for i in range(len(distributions)):
        for j in range(i + 1, len(distributions)):
            total += float(np.abs(distributions[i] - distributions[j]).sum())
            pairs += 1
    return total / pairs
