"""[Knowledge-1] Public seed + alpha + shadow ``t`` (Table VIII).

The adversary knows CIP's blending parameter and (to a controllable degree)
the random seed image the client initialized ``t`` from.  Starting from a
seed at a chosen SSIM to the client's, it optimizes a shadow ``t'`` on its
own shadow data against the target model, then mounts the loss-threshold
attack with ``t'``-blended queries.  The paper sweeps the seed SSIM in
{0.1, 0.3, 0.5, 0.7, 1.0}: the closer the attacker's seed, the (mildly)
stronger the attack.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.attacks.base import AttackData, AttackReport, CIPTarget, evaluate_attack
from repro.attacks.ob_malt import AnchoredLossAttack
from repro.core.config import CIPConfig
from repro.core.perturbation import optimize_perturbation_for_model
from repro.data.dataset import Dataset
from repro.metrics.ssim import blend_seeds_to_target_ssim, ssim
from repro.utils.rng import SeedLike, derive_rng


class PublicSeedAttack:
    """Shadow-``t`` attack from a seed of controlled similarity."""

    name = "Adaptive-Knowledge-1"

    def __init__(
        self,
        client_seed: np.ndarray,
        target_ssim: float,
        optimization_steps: int = 30,
        seed: SeedLike = 0,
    ) -> None:
        self.client_seed = np.asarray(client_seed, dtype=np.float64)
        self.target_ssim = target_ssim
        self.optimization_steps = optimization_steps
        self._seed = seed
        self.attacker_seed: Optional[np.ndarray] = None
        self.fitted_t: Optional[np.ndarray] = None

    def build_attacker_seed(self) -> np.ndarray:
        """A seed image at ~``target_ssim`` similarity to the client's."""
        rng = derive_rng(self._seed, "seed-noise")
        noise = rng.uniform(0.0, 1.0, size=self.client_seed.shape)
        if self.target_ssim >= 0.999:
            self.attacker_seed = self.client_seed.copy()
        else:
            self.attacker_seed = blend_seeds_to_target_ssim(
                self.client_seed, noise, self.target_ssim
            )
        return self.attacker_seed

    def run(
        self,
        target: CIPTarget,
        shadow_data: Dataset,
        data: AttackData,
    ) -> AttackReport:
        seed_image = self.build_attacker_seed()
        attack_config = CIPConfig(
            alpha=target.config.alpha,
            lambda_t=target.config.lambda_t,
            lambda_m=0.0,
            perturbation_lr=target.config.perturbation_lr,
            perturbation_steps=1,
            clip_range=target.config.clip_range,
        )
        perturbation = optimize_perturbation_for_model(
            target.module,
            shadow_data.inputs,
            shadow_data.labels,
            attack_config,
            steps=self.optimization_steps,
            seed=derive_rng(self._seed, "k1"),
            initial=seed_image,
        )
        self.fitted_t = perturbation.value
        adapted = target.with_guess(self.fitted_t)
        # No true members available: anchor on the attacker's shadow data.
        report = evaluate_attack(AnchoredLossAttack(shadow_data), adapted, data)
        return AttackReport(attack=self.name, metrics=report.metrics, auc=report.auc)

    def achieved_seed_ssim(self) -> float:
        if self.attacker_seed is None:
            raise RuntimeError("run build_attacker_seed first")
        return ssim(self.attacker_seed, self.client_seed)
