#!/usr/bin/env python3
"""Reproduce a paper table end-to-end and score its shape against the paper.

This ties the whole library together: run a registered experiment from the
paper's evaluation, fetch the paper's published numbers for the same sweep
(`repro.analysis.paper_reference`), and quantify shape agreement (Spearman
rank correlation, trend direction, pairwise-ordering concordance).

By default reproduces **Table X** (the inverse-MI adaptive attack vs alpha)
because it is cheap and has a crisp published trend: the attack stays at or
below random guessing and *rises toward 0.5* as alpha grows.

Run:  python examples/reproduce_paper.py [experiment_id]
"""

from __future__ import annotations

import sys

from repro.analysis import compare_sweeps, paper_reference as ref
from repro.experiments import QUICK, format_table, run_experiment


def score_table10(result) -> None:
    """Compare each dataset's measured alpha-sweep to the paper's Table X."""
    print("\nshape agreement vs paper Table X (inverse-MI attack vs alpha):")
    print(f"{'dataset':<12} {'spearman':>9} {'trend':>6} {'ordering':>9} {'verdict':>8}")
    for dataset in ("cifar100", "cifar_aug", "chmnist", "purchase50"):
        rows = [r for r in result.rows if r["dataset"] == dataset]
        rows.sort(key=lambda r: r["alpha"])
        measured = [r["attack_acc"] for r in rows]
        paper_row = ref.TABLE10_INVERSE[dataset]
        published = [paper_row[min(paper_row, key=lambda a: abs(a - r["alpha"]))] for r in rows]
        report = compare_sweeps(measured, published, trend_tolerance=0.02)
        verdict = "OK" if report.agrees else "DEV"
        print(
            f"{dataset:<12} {report.spearman:>9.2f} "
            f"{'same' if report.trend_match else 'diff':>6} "
            f"{report.ordering:>9.2f} {verdict:>8}"
        )


def main() -> None:
    experiment_id = sys.argv[1] if len(sys.argv) > 1 else "table10"
    print(f"running experiment {experiment_id!r} at the 'quick' profile ...\n")
    result = run_experiment(experiment_id, QUICK)
    print(format_table(result))
    if experiment_id == "table10":
        score_table10(result)
    else:
        print(
            "\n(shape scoring is wired for table10 in this example; "
            "see repro.analysis for the general API)"
        )


if __name__ == "__main__":
    main()
