"""[Table V] CIP test accuracy across alpha, per dataset.

Paper: accuracy is flat (sometimes better than no defense) for alpha <= 0.5
and drops ~1.6% on average at alpha >= 0.7.  Shape check: at every alpha,
CIP's accuracy stays within a modest band of the alpha=0 (no-defense)
accuracy — the utility-preservation claim.
"""

from benchmarks.conftest import run_and_report


def test_table5_accuracy_vs_alpha(benchmark, profile):
    result = run_and_report(benchmark, "table5", profile)
    assert len(result.rows) == 4
    small_alpha = min(profile.alphas)
    for row in result.rows:
        baseline = row["alpha_0"]
        # At the smallest alpha CIP is on par with (often above) no defense
        # — the paper's strongest utility claim.
        assert row[f"alpha_{small_alpha}"] > baseline - 0.1, row["dataset"]
        # Across the sweep the *mean* accuracy stays within a band of the
        # baseline; individual short runs vary more at reproduction scale
        # (paper: within ~2% everywhere).
        sweep_mean = sum(row[f"alpha_{a}"] for a in profile.alphas) / len(profile.alphas)
        assert sweep_mean > baseline - 0.18, (
            f"{row['dataset']}: sweep mean {sweep_mean:.3f} vs baseline {baseline:.3f}"
        )
