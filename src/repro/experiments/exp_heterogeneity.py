"""Table III and Figure 7: CIP and FL performance under data heterogeneity.

Table III sweeps the partition from non-i.i.d. to i.i.d. (classes per
client) with five clients and compares CIP, no-defense FL, and local-only
training.  Figure 7 measures the mean pairwise EMD between clients'
training-loss trajectories with and without CIP.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.cip_client import CIPClient
from repro.data.partition import partition_by_classes
from repro.experiments.common import get_bundle, make_cip_config, run_federated
from repro.experiments.profiles import Profile
from repro.experiments.registry import register
from repro.experiments.results import ExperimentResult
from repro.fl.client import ClientConfig, FLClient
from repro.fl.local import run_local_training
from repro.fl.server import FLServer
from repro.fl.simulation import FederatedSimulation, FLHistory
from repro.fl.training import evaluate_model
from repro.metrics.emd import pairwise_mean_emd
from repro.nn.models import build_model
from repro.utils.rng import derive_rng

TABLE3_CLIENTS = 5
TABLE3_ALPHA = 0.5
FIG7_ALPHA = 0.3  # paper Figure 7 uses alpha = 0.3


def _class_sweep(num_classes: int) -> List[int]:
    """Classes-per-client sweep from non-i.i.d. to i.i.d.

    Paper (100 classes): 20, 40, 60, 80, 100.  Scaled to the synthetic
    class count (20): 4, 8, 12, 16, 20.
    """
    return [max(1, num_classes * frac // 5) for frac in range(1, 6)]


def _run_fl(
    bundle,
    shards,
    profile: Profile,
    use_cip: bool,
    seed: int = 0,
) -> Tuple[float, FLHistory, FederatedSimulation]:
    in_channels = bundle.train.inputs.shape[1]
    client_config = ClientConfig(lr=5e-2)
    if use_cip:
        config = make_cip_config("cifar100", TABLE3_ALPHA)
        factory = lambda: build_model(  # noqa: E731
            "resnet",
            bundle.num_classes,
            dual_channel=True,
            in_channels=in_channels,
            seed=derive_rng(seed, "m"),
        )
        clients = [
            CIPClient(
                i, shards[i], factory, cip_config=config, config=client_config,
                seed=derive_rng(seed, "c", i),
            )
            for i in range(len(shards))
        ]
    else:
        factory = lambda: build_model(  # noqa: E731
            "resnet", bundle.num_classes, in_channels=in_channels, seed=derive_rng(seed, "m")
        )
        clients = [
            FLClient(i, shards[i], factory, client_config, seed=derive_rng(seed, "c", i))
            for i in range(len(shards))
        ]
    server = FLServer(factory)
    simulation = run_federated(server, clients, profile.fl_rounds)
    if use_cip:
        accuracy = float(np.mean(simulation.evaluate_clients(bundle.test)))
    else:
        accuracy = evaluate_model(server.model, bundle.test).accuracy
    return accuracy, simulation.history, simulation


@register("table3", "CIP vs no-defense vs local training across heterogeneity", "Table III")
def table3(profile: Profile) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="table3",
        title="Accuracy across data distributions (5 clients, synthetic CIFAR-100)",
        columns=["classes_per_client", "cip", "no_defense", "local_training"],
    )
    bundle = get_bundle("cifar100", profile)
    in_channels = bundle.train.inputs.shape[1]
    for classes_per_client in _class_sweep(bundle.num_classes):
        shards = partition_by_classes(
            bundle.train, TABLE3_CLIENTS, classes_per_client, seed=derive_rng(0, "p", classes_per_client)
        )
        cip_acc, _, _ = _run_fl(bundle, shards, profile, use_cip=True)
        plain_acc, _, _ = _run_fl(bundle, shards, profile, use_cip=False)
        local = run_local_training(
            shards,
            bundle.test,
            model_factory=lambda k: build_model(
                "resnet", k, in_channels=in_channels, seed=derive_rng(0, "local")
            ),
            config=ClientConfig(lr=5e-2),
            epochs=profile.fl_rounds,
            seed=derive_rng(0, "lt", classes_per_client),
        )
        result.add_row(
            classes_per_client=classes_per_client,
            cip=cip_acc,
            no_defense=plain_acc,
            local_training=local.mean_accuracy,
        )
    result.add_note(
        "paper: CIP beats no-defense under non-i.i.d. partitions and always beats local training"
    )
    return result


@register("fig7", "EMD of client training-loss distributions", "Figure 7")
def fig7(profile: Profile) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig7",
        title="Mean pairwise EMD of per-client training losses (CIP shifts non-i.i.d. clients together)",
        columns=["classes_per_client", "emd_no_defense", "emd_cip"],
    )
    bundle = get_bundle("cifar100", profile)
    num_clients = min(10, max(profile.client_counts))
    for classes_per_client in _class_sweep(bundle.num_classes)[::2]:
        shards = partition_by_classes(
            bundle.train, num_clients, classes_per_client, seed=derive_rng(1, "p", classes_per_client)
        )
        _, plain_history, _ = _run_fl(bundle, shards, profile, use_cip=False)
        _, cip_history, _ = _run_fl(bundle, shards, profile, use_cip=True)
        plain_series = [
            plain_history.client_loss_series(i) for i in range(num_clients)
        ]
        cip_series = [cip_history.client_loss_series(i) for i in range(num_clients)]
        result.add_row(
            classes_per_client=classes_per_client,
            emd_no_defense=pairwise_mean_emd(plain_series),
            emd_cip=pairwise_mean_emd(cip_series),
        )
    result.add_note("paper: CIP reduces inter-client loss EMD for heterogeneous partitions")
    return result
