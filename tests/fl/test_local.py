"""Local-training baseline (Table III comparator)."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.partition import partition_by_classes
from repro.fl.client import ClientConfig
from repro.fl.local import remap_to_local_classes, run_local_training
from repro.nn.models import build_model


class TestRemap:
    def test_restricts_and_renumbers(self):
        labels = np.array([0, 3, 5, 3, 0])
        ds = Dataset(np.arange(5.0)[:, None], labels, 6)
        local = remap_to_local_classes(ds, np.array([0, 3]))
        assert len(local) == 4
        assert local.num_classes == 2
        assert set(local.labels) == {0, 1}
        # class 0 stays 0, class 3 becomes 1
        np.testing.assert_array_equal(local.labels, [0, 1, 1, 0])

    def test_empty_selection(self):
        ds = Dataset(np.zeros((3, 1)), np.array([0, 1, 2]), 3)
        local = remap_to_local_classes(ds, np.array([2]))
        assert len(local) == 1


class TestLocalTraining:
    def test_runs_per_client_with_local_heads(self, tiny_vector_dataset):
        shards = partition_by_classes(tiny_vector_dataset, 3, classes_per_client=2, seed=0)
        built_sizes = []

        def model_factory(num_classes):
            built_sizes.append(num_classes)
            return build_model("mlp", num_classes, in_features=10, hidden=(16,), seed=0)

        result = run_local_training(
            shards,
            tiny_vector_dataset,
            model_factory,
            ClientConfig(lr=0.05),
            epochs=8,
            seed=0,
        )
        assert len(result.client_accuracies) == 3
        assert all(size <= 2 for size in built_sizes)
        assert 0.0 <= result.mean_accuracy <= 1.0

    def test_local_training_learns_separable_data(self, tiny_vector_dataset):
        shards = partition_by_classes(tiny_vector_dataset, 2, classes_per_client=2, seed=1)
        result = run_local_training(
            shards,
            tiny_vector_dataset,
            lambda k: build_model("mlp", k, in_features=10, hidden=(16,), seed=0),
            ClientConfig(lr=0.05),
            epochs=15,
            seed=0,
        )
        assert result.mean_accuracy > 0.6
