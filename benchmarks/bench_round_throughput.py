"""Round throughput: execution engines, nn array backends, virtualization.

Four sweeps, one JSON:

1. Sequential vs process execution on a synthetic tabular federation at
   2, 4, and 8 clients (the original bench; row schema unchanged).
2. ``nn_backend x compute_dtype`` on a conv-heavy image federation (VGG
   stages — where im2col/GEMM dominates), comparing the numpy reference
   against the workspace-cached AcceleratedBackend under both dtype
   policies.  Rows reuse the same timing fields plus the configuration
   axes and final test accuracy, so accuracy/throughput trade-offs are
   recorded together.
3. Sequential vs batched execution on a *cohort-scale* conv federation
   (many clients, a handful of samples each — the regime MIA evaluation
   reruns constantly).  There the sequential engine is dominated by Python
   dispatch over K tiny graphs; the batched engine stacks the cohort into
   grouped kernels.  Each row also records a digest of the final global
   state, and the sweep asserts the batched digest matches sequential
   bit-for-bit on every backend x dtype combo.
4. Virtualized *cross-device* rounds (see ``repro.fl.registry``): 2k- and
   10k-client populations at a fixed 100-client cohort.  Each row records
   the flat-memory evidence — peak RSS, store-resident bytes, and the
   high-water count of simultaneously live clients (which must equal the
   cohort, not the population) — and a small live-vs-virtual federation
   pair asserts that lazy materialization reproduces the eager-object
   path's bits exactly.

Writes ``BENCH_round_throughput.json`` at the repo root — the baseline
file future perf work diffs against.

Run directly (the usual way):

    PYTHONPATH=src python benchmarks/bench_round_throughput.py

or through pytest-benchmark alongside the paper benches:

    pytest benchmarks/bench_round_throughput.py --benchmark-only -s

The process backend can only beat sequential when real cores are available:
with 4 workers on >=4 cores an 8-client round is expected to run >= 2x
faster.  On fewer cores the backend still works (and stays bitwise-identical
— see tests/fl/test_executor.py) but pays pickling overhead with no
parallelism to recoup it, so the speedup assertion is gated on core count.
The JSON records ``cpu_count`` (the machine's cores) and ``cpus_visible``
(what the process affinity mask actually allows — in containers and cgroup
slices these routinely differ) so readers can interpret the numbers; the
gate uses the visible count, since that is what the worker pool can use.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path

import numpy as np

from repro.data.partition import partition_iid
from repro.data.synthetic import (
    ImageSpec,
    TabularSpec,
    generate_image_dataset,
    generate_tabular_dataset,
)
from repro.fl.client import ClientConfig, FLClient
from repro.fl.executor import make_executor
from repro.fl.registry import ClientRegistry
from repro.fl.server import FLServer
from repro.fl.simulation import FederatedSimulation
from repro.nn.backend import use_backend
from repro.nn.models import build_model
from repro.utils.rng import derive_rng

CLIENT_COUNTS = (2, 4, 8)
BACKENDS = ("sequential", "process")
NUM_WORKERS = 4
ROUNDS = 3
#: Two warm-up rounds: the first absorbs worker-pool spawn + client
#: pickling on the process backend (at ROUNDS=3 a cold pool would dominate
#: the measurement), the second catches stragglers like lazy workspace
#: allocation so the timed window sees steady-state rounds only.
WARMUP_ROUNDS = 2
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_round_throughput.json"


def _visible_cpus() -> int:
    """CPUs the scheduler will actually let this process use."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux platforms
        return os.cpu_count() or 1

_SPEC = TabularSpec(num_classes=8, num_features=64, flip_probability=0.1)

#: nn-backend sweep axes: every registered backend under both dtype policies.
NN_COMBOS = (
    ("numpy", "float64"),
    ("numpy", "float32"),
    ("accelerated", "float64"),
    ("accelerated", "float32"),
)
#: Enough rounds for the smoke federation to converge (~99% accuracy), so
#: the float32-vs-float64 accuracy comparison is measured on a trained
#: model rather than on chance-level noise.
NN_ROUNDS = 11
_IMAGE_SPEC = ImageSpec(num_classes=4, channels=1, height=16, width=16, noise_scale=0.1)

#: Cohort-scale conv sweep: many clients, a handful of images each.  Per
#: client the conv graph is tiny, so the sequential engine spends its time
#: in Python dispatch — exactly the regime the batched executor targets.
BATCHED_CLIENTS = 24
BATCHED_ROUNDS = 8
_COHORT_SPEC = ImageSpec(num_classes=4, channels=1, height=8, width=8, noise_scale=0.1)

#: Virtualized sweep: populations far beyond what eager client objects
#: could hold, at a fixed small cohort.  Memory must track the cohort.
VIRTUAL_POPULATIONS = (2_000, 10_000)
VIRTUAL_COHORT = 100
VIRTUAL_ROUNDS = 3
_VIRTUAL_SPEC = TabularSpec(num_classes=4, num_features=16, flip_probability=0.1)


def _build_federation(num_clients: int, seed: int = 0):
    dataset = generate_tabular_dataset(_SPEC, samples_per_class=48, seed=seed)
    shards = partition_iid(dataset, num_clients, seed=derive_rng(seed, "bench-p"))

    def factory():
        return build_model(
            "mlp", _SPEC.num_classes, in_features=_SPEC.num_features,
            hidden=(64,), seed=derive_rng(seed, "bench-m"),
        )

    server = FLServer(factory)
    clients = [
        FLClient(i, shards[i], factory, ClientConfig(lr=5e-2),
                 seed=derive_rng(seed, "bench-c", i))
        for i in range(num_clients)
    ]
    return server, clients


def _time_backend(backend: str, num_clients: int) -> dict:
    executor = make_executor(backend=backend, num_workers=NUM_WORKERS)
    with FederatedSimulation(*_build_federation(num_clients), executor=executor) as sim:
        # Warm-up absorbs one-time costs (worker spawn, client pickling) so
        # the measurement reflects steady-state rounds.
        sim.run(WARMUP_ROUNDS)
        start = time.perf_counter()
        sim.run(ROUNDS)
        elapsed = time.perf_counter() - start
        metrics = sim.history.round_metrics[WARMUP_ROUNDS:]
    mean_round = elapsed / ROUNDS
    return {
        "backend": backend,
        "clients": num_clients,
        "rounds": ROUNDS,
        "rounds_per_sec": (1.0 / mean_round) if mean_round > 0 else float("inf"),
        "mean_round_sec": mean_round,
        "mean_client_compute_sec": sum(
            m.total_compute_seconds for m in metrics
        ) / len(metrics),
        "mb_broadcast_per_round": sum(m.bytes_broadcast for m in metrics)
        / len(metrics) / 1e6,
        "mb_aggregated_per_round": sum(m.bytes_aggregated for m in metrics)
        / len(metrics) / 1e6,
    }


def _build_conv_federation(num_clients: int = 2, seed: int = 0):
    dataset = generate_image_dataset(_IMAGE_SPEC, samples_per_class=48, seed=seed)
    shards = partition_iid(dataset, num_clients, seed=derive_rng(seed, "bench-cp"))

    def factory():
        return build_model(
            "vgg", _IMAGE_SPEC.num_classes, in_channels=_IMAGE_SPEC.channels,
            stage_channels=(8, 16), convs_per_stage=1,
            seed=derive_rng(seed, "bench-cm"),
        )

    server = FLServer(factory)
    clients = [
        FLClient(i, shards[i], factory, ClientConfig(lr=5e-2, batch_size=16),
                 seed=derive_rng(seed, "bench-cc", i))
        for i in range(num_clients)
    ]
    return server, clients, dataset


def _time_nn_combo(nn_backend: str, compute_dtype: str) -> dict:
    """Sequential conv-heavy federation under one backend x dtype combo.

    Same timing fields as the executor rows, plus the configuration axes
    and the final test accuracy (the float32 policy must not cost more
    than a fraction of a point on this smoke-scale task).
    """
    with use_backend(nn_backend, compute_dtype=compute_dtype):
        server, clients, dataset = _build_conv_federation()
        with FederatedSimulation(server, clients) as sim:
            sim.run(WARMUP_ROUNDS)
            start = time.perf_counter()
            sim.run(NN_ROUNDS)
            elapsed = time.perf_counter() - start
            metrics = sim.history.round_metrics[WARMUP_ROUNDS:]
            accuracy = sim.evaluate_global(dataset).accuracy
    mean_round = elapsed / NN_ROUNDS
    return {
        "backend": "sequential",
        "nn_backend": nn_backend,
        "compute_dtype": compute_dtype,
        "clients": len(clients),
        "rounds": NN_ROUNDS,
        "rounds_per_sec": (1.0 / mean_round) if mean_round > 0 else float("inf"),
        "mean_round_sec": mean_round,
        "mean_client_compute_sec": sum(
            m.total_compute_seconds for m in metrics
        ) / len(metrics),
        "mb_broadcast_per_round": sum(m.bytes_broadcast for m in metrics)
        / len(metrics) / 1e6,
        "mb_aggregated_per_round": sum(m.bytes_aggregated for m in metrics)
        / len(metrics) / 1e6,
        "test_accuracy": accuracy,
    }


def _build_cohort_conv_federation(num_clients: int = BATCHED_CLIENTS, seed: int = 0):
    dataset = generate_image_dataset(
        _COHORT_SPEC,
        samples_per_class=num_clients * 4 // _COHORT_SPEC.num_classes,
        seed=seed,
    )
    shards = partition_iid(dataset, num_clients, seed=derive_rng(seed, "bench-bp"))

    def factory():
        return build_model(
            "vgg", _COHORT_SPEC.num_classes, in_channels=_COHORT_SPEC.channels,
            stage_channels=(8, 16), convs_per_stage=1,
            seed=derive_rng(seed, "bench-bm"),
        )

    server = FLServer(factory)
    clients = [
        FLClient(i, shards[i], factory, ClientConfig(lr=5e-2, batch_size=16),
                 seed=derive_rng(seed, "bench-bc", i))
        for i in range(num_clients)
    ]
    return server, clients


def _state_digest(state: dict) -> str:
    digest = hashlib.sha256()
    for name in sorted(state):
        value = np.ascontiguousarray(state[name])
        digest.update(name.encode())
        digest.update(str(value.dtype).encode())
        digest.update(str(value.shape).encode())
        digest.update(value.tobytes())
    return digest.hexdigest()


def _time_batched_combo(nn_backend: str, compute_dtype: str) -> list:
    """Sequential vs batched rows for the cohort federation under one combo.

    Both executors run the identical federation; each row carries a digest
    of the final global state so the JSON itself documents that batching
    left the trained bits untouched.
    """
    rows = []
    for executor_backend in ("sequential", "batched"):
        with use_backend(nn_backend, compute_dtype=compute_dtype):
            server, clients = _build_cohort_conv_federation()
            executor = make_executor(backend=executor_backend)
            with FederatedSimulation(server, clients, executor=executor) as sim:
                sim.run(WARMUP_ROUNDS)
                start = time.perf_counter()
                sim.run(BATCHED_ROUNDS)
                elapsed = time.perf_counter() - start
                metrics = sim.history.round_metrics[WARMUP_ROUNDS:]
            digest = _state_digest(server.global_state())
        mean_round = elapsed / BATCHED_ROUNDS
        rows.append({
            "backend": executor_backend,
            "nn_backend": nn_backend,
            "compute_dtype": compute_dtype,
            "clients": len(clients),
            "rounds": BATCHED_ROUNDS,
            "rounds_per_sec": (1.0 / mean_round) if mean_round > 0 else float("inf"),
            "mean_round_sec": mean_round,
            "mean_client_compute_sec": sum(
                m.total_compute_seconds for m in metrics
            ) / len(metrics),
            "mb_broadcast_per_round": sum(m.bytes_broadcast for m in metrics)
            / len(metrics) / 1e6,
            "mb_aggregated_per_round": sum(m.bytes_aggregated for m in metrics)
            / len(metrics) / 1e6,
            "state_digest": digest,
        })
    return rows


def _virtual_client_factory(seed: int = 0):
    """Factories for a derivable federation: client ``cid`` is a pure
    function of ``(seed, cid)``, so cold materializations are bit-stable."""

    def model_factory():
        return build_model(
            "mlp", _VIRTUAL_SPEC.num_classes,
            in_features=_VIRTUAL_SPEC.num_features, hidden=(16,),
            seed=derive_rng(seed, "bench-vm"),
        )

    def client_factory(cid: int) -> FLClient:
        shard = generate_tabular_dataset(
            _VIRTUAL_SPEC, samples_per_class=4,
            seed=derive_rng(seed, "bench-vd", cid),
        )
        return FLClient(cid, shard, model_factory, ClientConfig(lr=5e-2, batch_size=8),
                        seed=derive_rng(seed, "bench-vc", cid))

    return model_factory, client_factory


def _time_virtual(population: int, seed: int = 0) -> dict:
    """One virtualized run: timing plus the flat-memory evidence."""
    model_factory, client_factory = _virtual_client_factory(seed)
    registry = ClientRegistry(client_factory, population=population)
    server = FLServer(model_factory)
    with FederatedSimulation(
        server, registry=registry,
        clients_per_round=VIRTUAL_COHORT, sampling_seed=seed,
    ) as sim:
        start = time.perf_counter()
        sim.run(VIRTUAL_ROUNDS)
        elapsed = time.perf_counter() - start
        metrics = sim.history.round_metrics
    mean_round = elapsed / VIRTUAL_ROUNDS
    row = {
        "backend": "sequential",
        "mode": "virtual",
        "population": population,
        "cohort": VIRTUAL_COHORT,
        "rounds": VIRTUAL_ROUNDS,
        "rounds_per_sec": (1.0 / mean_round) if mean_round > 0 else float("inf"),
        "mean_round_sec": mean_round,
        "peak_rss_mb": max((m.peak_rss_bytes or 0) for m in metrics) / 1e6,
        "store_resident_mb": registry.store.resident_bytes() / 1e6,
        "max_live_clients": registry.max_live,
        "materializations": registry.materialized_total,
        "state_digest": _state_digest(server.global_state()),
    }
    registry.close()
    return row


def _virtual_digest_match(seed: int = 0) -> bool:
    """Live vs virtual on the identical small federation: bits must agree."""
    population, cohort, rounds = 32, 8, 3
    digests = []
    for virtual in (False, True):
        model_factory, client_factory = _virtual_client_factory(seed)
        server = FLServer(model_factory)
        if virtual:
            registry = ClientRegistry(client_factory, population=population)
            sim_kwargs = {"registry": registry}
        else:
            sim_kwargs = {"clients": [client_factory(i) for i in range(population)]}
        with FederatedSimulation(
            server, clients_per_round=cohort, sampling_seed=seed, **sim_kwargs
        ) as sim:
            sim.run(rounds)
        digests.append(_state_digest(server.global_state()))
    return digests[0] == digests[1]


def run_bench() -> dict:
    rows = [
        _time_backend(backend, num_clients)
        for num_clients in CLIENT_COUNTS
        for backend in BACKENDS
    ]
    nn_rows = [
        _time_nn_combo(nn_backend, compute_dtype)
        for nn_backend, compute_dtype in NN_COMBOS
    ]
    batched_rows = [
        row
        for nn_backend, compute_dtype in NN_COMBOS
        for row in _time_batched_combo(nn_backend, compute_dtype)
    ]
    report = {
        "benchmark": "round_throughput",
        "num_workers": NUM_WORKERS,
        "cpu_count": os.cpu_count(),
        "cpus_visible": _visible_cpus(),
        "rows": rows,
        "nn_backend_rows": nn_rows,
        "nn_backend_speedup_vs_reference": _nn_speedup(nn_rows),
        "batched_rows": batched_rows,
        "batched_speedup_vs_sequential": _batched_speedup(batched_rows),
        "batched_digest_match": _batched_digest_match(batched_rows),
        "virtual_rows": [
            _time_virtual(population) for population in VIRTUAL_POPULATIONS
        ],
        "virtual_digest_match": _virtual_digest_match(),
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    return report


def _batched_speedup(batched_rows) -> dict:
    """Per-combo batched-over-sequential round-throughput ratio."""
    by_key = {
        (row["backend"], row["nn_backend"], row["compute_dtype"]): row
        for row in batched_rows
    }
    return {
        f"{nn_backend}-{compute_dtype}": (
            by_key[("sequential", nn_backend, compute_dtype)]["mean_round_sec"]
            / by_key[("batched", nn_backend, compute_dtype)]["mean_round_sec"]
        )
        for nn_backend, compute_dtype in NN_COMBOS
    }


def _batched_digest_match(batched_rows) -> dict:
    """Whether batched reproduced the sequential bits, per combo."""
    by_key = {
        (row["backend"], row["nn_backend"], row["compute_dtype"]): row
        for row in batched_rows
    }
    return {
        f"{nn_backend}-{compute_dtype}": (
            by_key[("sequential", nn_backend, compute_dtype)]["state_digest"]
            == by_key[("batched", nn_backend, compute_dtype)]["state_digest"]
        )
        for nn_backend, compute_dtype in NN_COMBOS
    }


def _nn_speedup(nn_rows) -> dict:
    """Per-combo speedup over the numpy/float64 reference row."""
    by_key = {(row["nn_backend"], row["compute_dtype"]): row for row in nn_rows}
    reference = by_key[("numpy", "float64")]["mean_round_sec"]
    return {
        f"{nn_backend}-{compute_dtype}": reference
        / by_key[(nn_backend, compute_dtype)]["mean_round_sec"]
        for nn_backend, compute_dtype in NN_COMBOS
    }


def _speedup(report: dict, num_clients: int) -> float:
    by_key = {(row["backend"], row["clients"]): row for row in report["rows"]}
    sequential = by_key[("sequential", num_clients)]["mean_round_sec"]
    process = by_key[("process", num_clients)]["mean_round_sec"]
    return sequential / process


def test_round_throughput(benchmark):
    report = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    print()
    for row in report["rows"]:
        print(
            f"  {row['backend']:>10s}  {row['clients']} clients: "
            f"{row['rounds_per_sec']:.2f} rounds/sec "
            f"({row['mean_round_sec'] * 1e3:.1f} ms/round)"
        )
    for num_clients in CLIENT_COUNTS:
        print(f"  speedup @{num_clients} clients: {_speedup(report, num_clients):.2f}x")
    for row in report["nn_backend_rows"]:
        print(
            f"  {row['nn_backend']:>11s}/{row['compute_dtype']:<8s}: "
            f"{row['mean_round_sec'] * 1e3:.1f} ms/round, "
            f"accuracy {row['test_accuracy']:.3f}"
        )
    print(f"  nn speedups: {report['nn_backend_speedup_vs_reference']}")
    for row in report["batched_rows"]:
        print(
            f"  {row['backend']:>10s} cohort "
            f"{row['nn_backend']}/{row['compute_dtype']}: "
            f"{row['rounds_per_sec']:.2f} rounds/sec"
        )
    print(f"  batched speedups: {report['batched_speedup_vs_sequential']}")
    for row in report["virtual_rows"]:
        print(
            f"  virtual {row['population']:>6d} clients @ cohort "
            f"{row['cohort']}: {row['rounds_per_sec']:.2f} rounds/sec, "
            f"peak RSS {row['peak_rss_mb']:.1f} MB, "
            f"max live {row['max_live_clients']}"
        )
    print(f"  virtual digest match: {report['virtual_digest_match']}")
    assert OUTPUT.exists()
    # Flat memory: only the cohort is ever live, at every population scale,
    # and lazy materialization must not change the trained bits.
    for row in report["virtual_rows"]:
        assert row["max_live_clients"] <= VIRTUAL_COHORT, row
    assert report["virtual_digest_match"]
    # Parallel wins require real cores; a single-core container pays IPC
    # overhead with nothing to parallelize over, so only assert there.
    # Gate on the affinity-visible count: os.cpu_count() reports the
    # machine, not what a container/cgroup lets the pool use.
    if report["cpus_visible"] >= NUM_WORKERS:
        assert _speedup(report, 8) >= 2.0
    # Batching the cohort must reproduce the sequential bits exactly on
    # every backend x dtype combo...
    assert all(report["batched_digest_match"].values()), report[
        "batched_digest_match"
    ]
    # ...and collapse per-client Python dispatch into grouped kernels.  The
    # published JSON shows >=3x at accelerated/float32; assert a safety
    # margin below that so a loaded CI box doesn't flake the suite.
    assert report["batched_speedup_vs_sequential"]["accelerated-float32"] >= 2.0
    # The accelerated float32 path must beat the reference by >=1.3x on
    # this conv-heavy workload while staying within 0.5pp of its accuracy.
    speedups = report["nn_backend_speedup_vs_reference"]
    assert speedups["accelerated-float32"] >= 1.3
    by_key = {
        (row["nn_backend"], row["compute_dtype"]): row
        for row in report["nn_backend_rows"]
    }
    reference_accuracy = by_key[("numpy", "float64")]["test_accuracy"]
    fast_accuracy = by_key[("accelerated", "float32")]["test_accuracy"]
    assert abs(fast_accuracy - reference_accuracy) <= 0.005


if __name__ == "__main__":
    generated = run_bench()
    print(json.dumps(generated, indent=2))
    for count in CLIENT_COUNTS:
        print(f"speedup @{count} clients: {_speedup(generated, count):.2f}x")
    print(f"nn speedups: {generated['nn_backend_speedup_vs_reference']}")
    print(f"batched speedups: {generated['batched_speedup_vs_sequential']}")
    print(f"batched digests match: {generated['batched_digest_match']}")
    print(f"virtual digest match: {generated['virtual_digest_match']}")
