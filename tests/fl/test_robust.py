"""Server-side update screening: rule coverage, invariance, telemetry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ScreeningConfig
from repro.fl.client import ClientUpdate
from repro.fl.malicious import ByzantineInjector, corrupt_state
from repro.fl.robust import REJECT_REASONS, ScreeningReport, screen_updates


def reference_state():
    return {"w": np.zeros((4, 3)), "b": np.zeros(3)}


def honest_update(client_id, seed=None, step=0.1):
    rng = np.random.default_rng(100 + client_id if seed is None else seed)
    reference = reference_state()
    state = {
        key: value + step * rng.normal(size=value.shape)
        for key, value in reference.items()
    }
    return ClientUpdate(client_id=client_id, state=state, num_samples=10, train_loss=1.0)


def with_state(update, state):
    return ClientUpdate(
        client_id=update.client_id,
        state=state,
        num_samples=update.num_samples,
        train_loss=update.train_loss,
    )


class TestScreeningRules:
    def test_honest_round_accepts_everyone(self):
        updates = [honest_update(i) for i in range(6)]
        report = screen_updates(updates, reference_state(), ScreeningConfig())
        assert not report.rejected
        assert [u.client_id for u in report.accepted] == list(range(6))
        assert report.num_screened == 6
        assert all(np.isfinite(score) for score in report.scores.values())

    def test_nan_update_is_rejected(self):
        updates = [honest_update(i) for i in range(5)]
        bomb = corrupt_state("nan_bomb", updates[0].state)
        updates[0] = with_state(updates[0], bomb)
        report = screen_updates(updates, reference_state(), ScreeningConfig())
        assert report.rejected == {0: "non_finite"}
        assert report.scores[0] == float("inf")
        assert len(report.accepted) == 4

    def test_shape_mismatch_is_rejected(self):
        updates = [honest_update(i) for i in range(4)]
        updates[1] = with_state(updates[1], {"w": np.zeros((2, 2)), "b": np.zeros(1)})
        report = screen_updates(updates, reference_state(), ScreeningConfig())
        assert report.rejected == {1: "shape_mismatch"}

    def test_absolute_norm_bound(self):
        updates = [honest_update(i) for i in range(4)]
        boosted = {k: 100.0 * v for k, v in updates[0].state.items()}
        updates[0] = with_state(updates[0], boosted)
        config = ScreeningConfig(
            max_delta_norm=10.0, norm_multiplier=0.0, outlier_threshold=0.0
        )
        report = screen_updates(updates, reference_state(), config)
        assert report.rejected == {0: "norm_bound"}

    def test_relative_norm_outlier_catches_boosted_replacement(self):
        updates = [honest_update(i) for i in range(6)]
        boosted = corrupt_state(
            "model_replacement", updates[2].state,
            reference=reference_state(), scale=50.0,
        )
        updates[2] = with_state(updates[2], boosted)
        report = screen_updates(updates, reference_state(), ScreeningConfig())
        assert report.rejected.get(2) in ("norm_outlier", "distance_outlier")
        assert len(report.accepted) == 5

    def test_direction_rule_catches_sign_flip(self):
        updates = [honest_update(i, step=0.1) for i in range(6)]
        # Give the honest updates a shared drift so the median delta has a
        # meaningful direction, then flip one client's sign.
        drift = {k: 0.5 * np.ones_like(v) for k, v in reference_state().items()}
        updates = [
            with_state(u, {k: v + drift[k] for k, v in u.state.items()})
            for u in updates
        ]
        flipped = corrupt_state(
            "sign_flip", updates[0].state, reference=reference_state()
        )
        updates[0] = with_state(updates[0], flipped)
        config = ScreeningConfig(
            norm_multiplier=0.0, outlier_threshold=0.0, min_cosine=0.0
        )
        report = screen_updates(updates, reference_state(), config)
        assert report.rejected == {0: "direction"}

    def test_statistical_rules_need_min_updates(self):
        # Two updates, one wildly larger: with min_updates=3 the relative
        # rules stay off and both pass (absolute rules still apply).
        updates = [honest_update(0), honest_update(1)]
        boosted = {k: 1e3 * v for k, v in updates[1].state.items()}
        updates[1] = with_state(updates[1], boosted)
        report = screen_updates(
            updates, reference_state(), ScreeningConfig(min_updates=3)
        )
        assert not report.rejected

    def test_all_reasons_are_documented(self):
        assert set(REJECT_REASONS) == {
            "shape_mismatch",
            "non_finite",
            "norm_bound",
            "norm_outlier",
            "distance_outlier",
            "direction",
        }


class TestScreeningInvariance:
    def _poisoned_round(self):
        updates = [honest_update(i) for i in range(8)]
        updates[3] = with_state(
            updates[3], corrupt_state("nan_bomb", updates[3].state)
        )
        updates[5] = with_state(
            updates[5],
            corrupt_state(
                "model_replacement", updates[5].state,
                reference=reference_state(), scale=40.0,
            ),
        )
        return updates

    def test_permutation_invariant_decisions(self):
        updates = self._poisoned_round()
        config = ScreeningConfig()
        baseline = screen_updates(updates, reference_state(), config)
        rng = np.random.default_rng(0)
        for _ in range(4):
            order = rng.permutation(len(updates))
            shuffled = [updates[i] for i in order]
            report = screen_updates(shuffled, reference_state(), config)
            assert report.rejected == baseline.rejected
            assert report.scores == baseline.scores
            # Accepted updates come back in the caller's order.
            assert [u.client_id for u in report.accepted] == [
                updates[i].client_id
                for i in order
                if updates[i].client_id not in report.rejected
            ]

    def test_screening_is_deterministic(self):
        updates = self._poisoned_round()
        first = screen_updates(updates, reference_state(), ScreeningConfig())
        second = screen_updates(updates, reference_state(), ScreeningConfig())
        assert first.rejected == second.rejected
        assert first.scores == second.scores
        assert first.delta_norms == second.delta_norms


class TestByzantineInjectorSchedule:
    def test_schedule_is_deterministic_and_stateless(self):
        from repro.core.config import ByzantineConfig

        config = ByzantineConfig(
            attack="gaussian_noise", clients=(1, 3), noise_std=0.5, seed=11
        )
        state = {"w": np.ones((3, 3)), "b": np.zeros(3)}
        first = ByzantineInjector(config)
        second = ByzantineInjector(config)
        for round_index in range(3):
            for client_id in range(4):
                a = first.corrupt(round_index, client_id, state)
                b = second.corrupt(round_index, client_id, state)
                for key in state:
                    assert np.array_equal(a[key], b[key])
        # Honest clients pass through untouched (same object).
        assert first.corrupt(0, 0, state) is state

    def test_start_round_gates_the_attack(self):
        from repro.core.config import ByzantineConfig

        config = ByzantineConfig(attack="sign_flip", clients=(0,), start_round=2)
        injector = ByzantineInjector(config)
        assert injector.attack_kind(0, 0) == "none"
        assert injector.attack_kind(1, 0) == "none"
        assert injector.attack_kind(2, 0) == "sign_flip"

    def test_plan_overrides_config(self):
        from repro.core.config import ByzantineConfig

        injector = ByzantineInjector(
            ByzantineConfig(attack="sign_flip", clients=(0,)),
            plan={1: "nan_bomb"},
        )
        assert injector.attack_kind(0, 0) == "sign_flip"
        assert injector.attack_kind(0, 1) == "nan_bomb"
        assert injector.attack_kind(0, 2) == "none"
        with pytest.raises(ValueError, match="plan kinds"):
            ByzantineInjector(plan={0: "meteor"})


class TestCorruptState:
    def test_sign_flip_negates_the_delta(self):
        reference = reference_state()
        state = {k: v + 1.0 for k, v in reference.items()}
        flipped = corrupt_state("sign_flip", state, reference=reference)
        for key in state:
            np.testing.assert_allclose(flipped[key], reference[key] - 1.0)

    def test_model_replacement_boosts_the_delta(self):
        reference = reference_state()
        state = {k: v + 1.0 for k, v in reference.items()}
        boosted = corrupt_state(
            "model_replacement", state, reference=reference, scale=5.0
        )
        for key in state:
            np.testing.assert_allclose(boosted[key], reference[key] + 5.0)

    def test_nan_bomb_is_non_finite(self):
        state = {"w": np.ones((2, 2))}
        bombed = corrupt_state("nan_bomb", state)
        assert not np.isfinite(bombed["w"]).all()
        assert np.isinf(bombed["w"]).any()

    def test_preserves_dtype_and_skips_integers(self):
        state = {
            "w": np.ones((2, 2), dtype=np.float32),
            "steps": np.array([3], dtype=np.int64),
        }
        for kind in ("sign_flip", "model_replacement", "gaussian_noise", "nan_bomb"):
            out = corrupt_state(
                kind, state, rng=np.random.default_rng(0)
            )
            assert out["w"].dtype == np.float32, kind
            assert out["steps"].dtype == np.int64, kind
            np.testing.assert_array_equal(out["steps"], state["steps"])

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            corrupt_state("meteor", {"w": np.ones(2)})

    def test_report_dataclass_counts(self):
        report = ScreeningReport()
        assert report.num_screened == 0


class TestStreamingScreenerWarmup:
    """Cold-start hardening: the relative norm rule applies below
    ``min_updates`` as soon as any delta has been accepted."""

    @staticmethod
    def _delta(scale, seed=0):
        rng = np.random.default_rng(seed)
        return {
            "w": scale * rng.normal(size=(4, 3)),
            "b": scale * rng.normal(size=3),
        }

    def test_round_zero_norm_bomb_is_quarantined(self):
        from repro.fl.robust import StreamingScreener

        screener = StreamingScreener(ScreeningConfig(min_updates=3))
        reason, _ = screener.screen(0, self._delta(0.1, seed=1))
        assert reason is None  # first arrival: no population to compare to
        # Second arrival, still far below min_updates: a 100x norm bomb
        # must not ride into the global model unscreened.
        reason, _ = screener.screen(1, self._delta(10.0, seed=2))
        assert reason == "norm_outlier"
        assert len(screener) == 1  # the bomb never joined the window

    def test_honest_warmup_arrivals_are_unaffected(self):
        from repro.fl.robust import StreamingScreener

        screener = StreamingScreener(ScreeningConfig(min_updates=4))
        for i in range(4):
            reason, score = screener.screen(i, self._delta(0.1, seed=10 + i))
            assert reason is None, i
            assert score == 0.0
        assert len(screener) == 4

    def test_first_arrival_is_bounded_only_by_absolute_norm(self):
        from repro.fl.robust import StreamingScreener

        unbounded = StreamingScreener(ScreeningConfig(min_updates=3))
        reason, _ = unbounded.screen(0, self._delta(50.0, seed=3))
        assert reason is None  # nothing to compare against

        bounded = StreamingScreener(
            ScreeningConfig(min_updates=3, max_delta_norm=1.0)
        )
        reason, _ = bounded.screen(0, self._delta(50.0, seed=3))
        assert reason == "norm_bound"

    def test_warmup_decisions_replay_after_state_round_trip(self):
        from repro.fl.robust import StreamingScreener

        config = ScreeningConfig(min_updates=3)
        original = StreamingScreener(config)
        original.screen(0, self._delta(0.1, seed=20))
        original.screen(1, self._delta(0.12, seed=21))

        restored = StreamingScreener(config)
        restored.import_state(original.export_state())
        assert len(restored) == len(original)
        for client_id, delta in [
            (2, self._delta(0.11, seed=22)),   # honest: accepted by both
            (3, self._delta(25.0, seed=23)),   # bomb: rejected by both
        ]:
            assert original.screen(client_id, delta) == restored.screen(
                client_id, delta
            )
