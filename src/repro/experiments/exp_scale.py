"""Scaling drill: virtualized cross-device rounds with flat memory.

Not a paper table — an engineering experiment for the client-virtualization
subsystem (see :mod:`repro.fl.registry` and DESIGN.md's scaling section).
It runs FedAvg over a population that is never fully materialized: each
round samples a cohort of ids, builds only those clients from
``(seed, client_id)``, trains them, and parks their dirty state in the
configured state store.  The result table reports the memory evidence
(peak RSS, store-resident bytes, high-water live-client count) alongside
the usual round telemetry, and cross-checks that sharded hierarchical
FedAvg reproduces flat FedAvg bitwise.

CLI knobs (``--population --cohort-fraction --shards --state-store
--state-cache-size``) override the profile-scaled defaults; the optional
``REPRO_SCALE_RSS_CEILING_MB`` environment variable turns the peak-RSS
report into a hard assertion (CI's scale matrix uses it).
"""

from __future__ import annotations

import hashlib
import os
from typing import Optional, Tuple

from repro.data.synthetic import TabularSpec, generate_tabular_dataset
from repro.experiments.common import get_execution_config, run_federated
from repro.experiments.profiles import Profile
from repro.experiments.registry import register
from repro.experiments.results import ExperimentResult
from repro.fl.client import ClientConfig, FLClient
from repro.fl.registry import ClientRegistry, make_state_store
from repro.fl.server import FLServer
from repro.nn.models import build_model
from repro.utils.rng import derive_rng

#: Per-client synthetic shard shape: tiny on purpose — the experiment
#: measures the *round machinery's* memory, not model quality.
_SPEC = TabularSpec(num_classes=4, num_features=16, flip_probability=0.1)
_SAMPLES_PER_CLASS = 4
_HIDDEN = (16,)


def _model_factory(seed: int):
    def factory():
        return build_model(
            "mlp",
            _SPEC.num_classes,
            in_features=_SPEC.num_features,
            hidden=_HIDDEN,
            seed=derive_rng(seed, "scale-model"),
        )

    return factory


def build_scale_registry(
    population: int,
    seed: int = 0,
    store_name: str = "memory",
    cache_size: int = 64,
    spill_dir: Optional[str] = None,
    lr: float = 5e-2,
) -> Tuple[ClientRegistry, FLServer]:
    """A virtualized synthetic federation of ``population`` clients.

    Every client is derivable from ``(seed, client_id)`` alone: its data
    shard, model init, and training stream all come from
    :func:`repro.utils.rng.derive_rng`, so a cold materialization in round
    40 is bit-identical to one in round 1.
    """
    model_factory = _model_factory(seed)

    def client_factory(cid: int) -> FLClient:
        shard = generate_tabular_dataset(
            _SPEC,
            samples_per_class=_SAMPLES_PER_CLASS,
            seed=derive_rng(seed, "scale-data", cid),
        )
        return FLClient(
            cid,
            shard,
            model_factory,
            ClientConfig(lr=lr, batch_size=8),
            seed=derive_rng(seed, "scale-client", cid),
        )

    store = make_state_store(store_name, cache_size=cache_size, spill_dir=spill_dir)
    registry = ClientRegistry(
        client_factory,
        population=population,
        store=store,
        spec={"kind": "scale-synthetic", "seed": seed, "population": population},
    )
    return registry, FLServer(model_factory)


def global_digest(server: FLServer) -> str:
    """SHA-256 over the server's global state (key order + raw bytes)."""
    digest = hashlib.sha256()
    for key, value in sorted(server.global_state().items()):
        digest.update(key.encode("utf-8"))
        digest.update(value.tobytes())
    return digest.hexdigest()


def _run_cohorts(
    population: int,
    cohort: int,
    rounds: int,
    seed: int,
    shards: int,
) -> str:
    """One small virtual run at the given shard count; returns the digest."""
    registry, server = build_scale_registry(population, seed=seed)
    if shards > 1:
        server.set_aggregator("fedavg", shards=shards)
    simulation = run_federated(
        server,
        None,
        rounds,
        registry=registry,
        clients_per_round=cohort,
        sampling_seed=seed,
    )
    try:
        return global_digest(simulation.server)
    finally:
        registry.close()


@register("scale", "Client virtualization: flat-memory rounds", "Scaling drill")
def scale(profile: Profile) -> ExperimentResult:
    config = get_execution_config()
    population = config.population or {"smoke": 200, "quick": 1000}.get(
        profile.name, 2000
    )
    fraction = config.cohort_fraction if config.cohort_fraction is not None else 0.01
    cohort = max(2, min(population, int(round(population * fraction))))
    rounds = max(2, min(profile.fl_rounds, 3))
    seed = 0

    result = ExperimentResult(
        experiment_id="scale",
        title="Virtualized federation: memory stays flat in the population",
        columns=[
            "population",
            "cohort",
            "rounds",
            "backend",
            "state_store",
            "peak_rss_mb",
            "store_resident_mb",
            "max_live_clients",
            "materializations",
            "shard_digest_match",
        ],
    )

    registry, server = build_scale_registry(
        population,
        seed=seed,
        store_name=config.state_store,
        cache_size=config.state_cache_size,
    )
    if config.shards > 1:
        server.set_aggregator(config.aggregator, shards=config.shards)
    simulation = run_federated(
        server,
        None,
        rounds,
        registry=registry,
        clients_per_round=cohort,
        sampling_seed=seed,
    )
    metrics = simulation.history.round_metrics
    peak_rss = max((m.peak_rss_bytes or 0) for m in metrics)
    store_resident = registry.store.resident_bytes()
    max_live = registry.max_live
    materializations = registry.materialized_total
    registry.close()

    # Sharded hierarchical FedAvg must be an arithmetic no-op: re-run a
    # small federation flat and sharded and compare global-state digests.
    check_population = min(population, 48)
    check_cohort = min(cohort, 12)
    check_shards = config.shards if config.shards > 1 else 3
    flat = _run_cohorts(check_population, check_cohort, 2, seed, shards=1)
    sharded = _run_cohorts(check_population, check_cohort, 2, seed, shards=check_shards)
    if flat != sharded:
        raise RuntimeError(
            f"sharded fedavg diverged from flat: {flat[:16]} != {sharded[:16]} "
            f"(population={check_population}, cohort={check_cohort}, "
            f"shards={check_shards})"
        )

    result.add_row(
        population=population,
        cohort=cohort,
        rounds=rounds,
        backend=config.backend,
        state_store=config.state_store,
        peak_rss_mb=peak_rss / 1e6,
        store_resident_mb=store_resident / 1e6,
        max_live_clients=max_live,
        materializations=materializations,
        shard_digest_match=True,
    )
    result.add_note(
        f"cohort fraction {fraction:.4f}; shard check at population "
        f"{check_population} with {check_shards} shards: digests equal"
    )

    ceiling_mb = os.environ.get("REPRO_SCALE_RSS_CEILING_MB")
    if ceiling_mb:
        ceiling = float(ceiling_mb) * 1e6
        if peak_rss > ceiling:
            raise RuntimeError(
                f"peak RSS {peak_rss / 1e6:.1f} MB exceeds the "
                f"REPRO_SCALE_RSS_CEILING_MB={ceiling_mb} ceiling"
            )
        result.add_note(f"peak RSS under the {ceiling_mb} MB CI ceiling")
    return result
