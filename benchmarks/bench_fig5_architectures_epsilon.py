"""[Figure 5] CIP vs DP across architectures and privacy budgets (2 clients).

Paper: with epsilon up to 256 DP reaches only about half of CIP's test
accuracy; attack accuracy for DP rises with epsilon.  Shape checks: for each
architecture CIP's accuracy beats every DP budget in the sweep, and DP
accuracy is non-decreasing in epsilon on average.
"""

import numpy as np

from benchmarks.conftest import run_and_report


def test_fig5_architectures_epsilon(benchmark, profile):
    result = run_and_report(benchmark, "fig5", profile)
    for architecture in ("vgg", "densenet", "resnet"):
        rows = [r for r in result.rows if r["model"] == architecture]
        cip_rows = [r for r in rows if r["defense"] == "cip"]
        dp_rows = sorted(
            (r for r in rows if r["defense"] == "dp"), key=lambda r: r["epsilon"]
        )
        assert len(cip_rows) == 1
        assert len(dp_rows) == len(profile.epsilons)
        # CIP utility beats DP at every epsilon in the sweep
        best_dp = max(r["test_acc"] for r in dp_rows)
        assert cip_rows[0]["test_acc"] > best_dp
