"""Transformer building blocks: LayerNorm and multi-head self-attention.

The paper's dual-channel architecture is backbone-agnostic — Section III-A
explicitly lists vision transformers alongside ConvNets — so the model zoo
includes a mini ViT (:class:`repro.nn.models.vit.MiniViTBackbone`) built on
these blocks.
"""

from __future__ import annotations

import numpy as np

from repro.nn import tensor as T
from repro.nn.functional import softmax
from repro.nn.layers import Linear, Module, Parameter
from repro.nn import init as initializers
from repro.utils.rng import SeedLike, derive_rng


class LayerNorm(Module):
    """Layer normalization over the last axis."""

    def __init__(self, normalized_dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.normalized_dim = normalized_dim
        self.eps = eps
        self.weight = Parameter(initializers.ones((normalized_dim,)))
        self.bias = Parameter(initializers.zeros((normalized_dim,)))

    def forward(self, x):
        if x.shape[-1] != self.normalized_dim:
            raise ValueError(
                f"LayerNorm expects last dim {self.normalized_dim}, got {x.shape[-1]}"
            )
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normalized = centered / (variance + self.eps).sqrt()
        return normalized * self.weight + self.bias


class MultiHeadSelfAttention(Module):
    """Standard scaled-dot-product self-attention over (N, S, D) sequences."""

    def __init__(self, dim: int, num_heads: int, seed: SeedLike = None) -> None:
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError("dim must be divisible by num_heads")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.qkv = Linear(dim, 3 * dim, seed=derive_rng(seed, "qkv"))
        self.out = Linear(dim, dim, seed=derive_rng(seed, "out"))

    def forward(self, x):
        batch, seq, dim = x.shape
        qkv = self.qkv(x.reshape(batch * seq, dim)).reshape(
            batch, seq, 3, self.num_heads, self.head_dim
        )
        # -> (3, N, H, S, Hd)
        qkv = qkv.transpose(2, 0, 3, 1, 4)
        q, k, v = qkv[0], qkv[1], qkv[2]
        scale = 1.0 / np.sqrt(self.head_dim)
        scores = (q @ k.transpose(0, 1, 3, 2)) * scale  # (N, H, S, S)
        weights = softmax(scores, axis=-1)
        context = weights @ v  # (N, H, S, Hd)
        merged = context.transpose(0, 2, 1, 3).reshape(batch * seq, dim)
        return self.out(merged).reshape(batch, seq, dim)


class TransformerBlock(Module):
    """Pre-norm transformer encoder block: MSA + MLP with residuals."""

    def __init__(
        self, dim: int, num_heads: int, mlp_ratio: float = 2.0, seed: SeedLike = None
    ) -> None:
        super().__init__()
        self.norm1 = LayerNorm(dim)
        self.attention = MultiHeadSelfAttention(dim, num_heads, seed=derive_rng(seed, "attn"))
        self.norm2 = LayerNorm(dim)
        hidden = int(dim * mlp_ratio)
        self.fc1 = Linear(dim, hidden, seed=derive_rng(seed, "fc1"))
        self.fc2 = Linear(hidden, dim, seed=derive_rng(seed, "fc2"))

    def forward(self, x):
        x = x + self.attention(self.norm1(x))
        batch, seq, dim = x.shape
        hidden = self.fc2(self.fc1(self.norm2(x).reshape(batch * seq, dim)).relu())
        return x + hidden.reshape(batch, seq, dim)
