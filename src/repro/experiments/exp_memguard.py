"""MemGuard-in-FL: why output perturbation fails in federated learning.

Paper Section I: "output perturbations are ineffective in an FL setting,
because a malicious server can access the model without output
perturbation."  This experiment makes that argument quantitative:

* against a *black-box output* attack routed through the MemGuard filter,
  the defense works (attack drops toward random);
* against the same attack with *direct model access* (the FL server's view),
  MemGuard changes nothing — the attack accuracy matches no-defense;
* CIP, in contrast, defends the direct-access view too.
"""

from __future__ import annotations

from repro.attacks import ObMALTAttack, ObNNAttack, evaluate_attack
from repro.defenses.memguard import MemGuardDefense, label_preservation_rate
from repro.experiments.common import attack_pools, train_cip, train_legacy
from repro.experiments.profiles import Profile
from repro.experiments.registry import register
from repro.experiments.results import ExperimentResult

DATASET = "cifar100"


@register(
    "memguard_fl",
    "Output perturbation vs a model-access adversary",
    "Section I critique",
)
def memguard_fl(profile: Profile) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="memguard_fl",
        title="MemGuard defends the output API but not the FL server's model access",
        columns=["defense", "adversary_view", "malt_acc", "nn_acc"],
    )
    legacy = train_legacy(DATASET, profile)
    data = attack_pools(legacy.bundle, profile)
    raw_target = legacy.target()
    guarded = MemGuardDefense(raw_target, distortion_budget=1.2)

    # sanity: the filter preserves every predicted label
    preserved = label_preservation_rate(guarded, legacy.bundle.test.inputs)
    result.add_note(f"MemGuard label preservation rate: {preserved:.3f}")

    # MemGuard's threat model (Jia et al.): the adversary's attack models
    # are built against the *unfiltered* model; the defense then perturbs
    # the served outputs to fool them.  Fit once on the raw target, score
    # against each view.
    malt = ObMALTAttack()
    malt.fit(raw_target, data)
    nn = ObNNAttack(epochs=40, seed=0)
    nn.fit(raw_target, data)

    def score_view(target):
        import numpy as np

        from repro.metrics.classification import binary_metrics

        rows = {}
        for name, attack in (("malt", malt), ("nn", nn)):
            member_scores = attack.score(target, data.eval_members)
            nonmember_scores = attack.score(target, data.eval_nonmembers)
            scores = np.concatenate([member_scores, nonmember_scores])
            labels = np.concatenate(
                [np.ones(len(member_scores), dtype=int), np.zeros(len(nonmember_scores), dtype=int)]
            )
            rows[name] = binary_metrics(scores >= 0.5, labels).accuracy
        return rows

    for defense, view, target in (
        ("none", "output_api", raw_target),
        ("memguard", "output_api", guarded),
        ("memguard", "model_access", raw_target),  # the server bypasses the filter
    ):
        accs = score_view(target)
        result.add_row(
            defense=defense, adversary_view=view, malt_acc=accs["malt"], nn_acc=accs["nn"]
        )
    result.add_note(
        "loss-threshold attacks survive the filter (Song & Mittal'21); NN classifiers are fooled"
    )

    cip = train_cip(DATASET, 0.7, profile)
    cip_data = attack_pools(cip.bundle, profile)
    malt = evaluate_attack(ObMALTAttack(), cip.target(), cip_data)
    nn = evaluate_attack(ObNNAttack(epochs=40, seed=0), cip.target(), cip_data)
    result.add_row(
        defense="cip", adversary_view="model_access", malt_acc=malt.accuracy, nn_acc=nn.accuracy
    )
    result.add_note(
        "paper: a malicious server queries the model without the output filter"
    )
    return result
