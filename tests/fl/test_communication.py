"""Communication-cost accounting."""

import numpy as np
import pytest

from repro.fl.communication import (
    CommunicationLedger,
    compare_traffic,
    round_traffic_bytes,
    state_dict_bytes,
)
from repro.nn.models import build_model


class TestSizes:
    def test_state_dict_bytes(self):
        state = {"w": np.zeros((10, 10)), "b": np.zeros(10)}
        assert state_dict_bytes(state) == (100 + 10) * 8

    def test_round_traffic(self):
        state = {"w": np.zeros(100)}
        assert round_traffic_bytes(state, participants=5) == 2 * 5 * 800

    def test_zero_participants(self):
        assert round_traffic_bytes({"w": np.zeros(4)}, 0) == 0

    def test_negative_participants_rejected(self):
        with pytest.raises(ValueError):
            round_traffic_bytes({"w": np.zeros(4)}, -1)

    def test_matches_num_parameters(self):
        model = build_model("resnet", 4, in_channels=1, seed=0)
        state = model.state_dict()
        param_bytes = model.num_parameters() * 8
        assert state_dict_bytes(state) >= param_bytes  # + BN buffers


class TestLedger:
    def test_accumulates(self):
        ledger = CommunicationLedger()
        state = {"w": np.zeros(10)}
        ledger.record_round(state, 3)
        ledger.record_round(state, 2)
        assert ledger.rounds == 2
        assert ledger.total_bytes == 2 * 3 * 80 + 2 * 2 * 80
        assert ledger.total_megabytes() == pytest.approx(ledger.total_bytes / 1e6)


class TestCompare:
    def test_cip_traffic_overhead_matches_parameter_overhead(self):
        """The dual-channel model's wire overhead is the dense-head growth."""
        legacy = build_model("resnet", 20, in_channels=3, seed=0)
        dual = build_model("resnet", 20, dual_channel=True, in_channels=3, seed=0)
        report = compare_traffic(
            legacy.state_dict(), dual.state_dict(), participants=5, rounds=100
        )
        assert 0.0 < report["overhead_pct"] < 10.0
        assert report["total_bytes_b"] > report["total_bytes_a"]

    def test_identical_states_zero_overhead(self):
        state = {"w": np.zeros(8)}
        report = compare_traffic(state, state, participants=2, rounds=3)
        assert report["overhead_pct"] == 0.0


class TestLedgerDirections:
    def test_record_traffic_tracks_both_directions(self):
        ledger = CommunicationLedger()
        ledger.record_traffic(1000, 100)
        ledger.record_traffic(1000, 80)
        assert ledger.rounds == 2
        assert ledger.total_broadcast_bytes == 2000
        assert ledger.total_upload_bytes == 180
        assert ledger.total_bytes == 2180
        assert ledger.per_round_bytes == [1100, 1080]

    def test_record_round_still_bills_the_dense_wire_model(self):
        ledger = CommunicationLedger()
        state = {"w": np.zeros(10)}
        ledger.record_round(state, 3)
        assert ledger.total_broadcast_bytes == ledger.total_upload_bytes == 3 * 80
