"""DP-SGD mechanism, the RDP accountant, and the local-DP FL client."""

import math

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.partition import partition_iid
from repro.defenses.dp import (
    DPClient,
    DPConfig,
    DPTrainer,
    epsilon_for,
    noise_multiplier_for_epsilon,
    rdp_gaussian,
)
from repro.fl.client import ClientConfig
from repro.fl.server import FLServer
from repro.fl.simulation import FederatedSimulation
from repro.fl.training import evaluate_model
from repro.nn.models import build_model


def factory():
    return build_model("mlp", 3, in_features=10, hidden=(16,), seed=0)


class TestAccountant:
    def test_rdp_gaussian_formula(self):
        assert rdp_gaussian(2.0, 4.0) == pytest.approx(4.0 / 8.0)

    def test_epsilon_decreases_with_noise(self):
        eps_small = epsilon_for(0.5, steps=100, sampling_rate=0.1, delta=1e-5)
        eps_large = epsilon_for(4.0, steps=100, sampling_rate=0.1, delta=1e-5)
        assert eps_large < eps_small

    def test_epsilon_increases_with_steps(self):
        short = epsilon_for(1.0, steps=10, sampling_rate=0.1, delta=1e-5)
        long = epsilon_for(1.0, steps=1000, sampling_rate=0.1, delta=1e-5)
        assert long > short

    def test_zero_noise_infinite_epsilon(self):
        assert epsilon_for(0.0, 10, 0.1, 1e-5) == math.inf

    def test_inverse_consistent(self):
        for epsilon in (1.0, 8.0, 32.0):
            noise = noise_multiplier_for_epsilon(epsilon, steps=50, sampling_rate=0.2)
            achieved = epsilon_for(noise, 50, 0.2, 1e-5)
            assert achieved <= epsilon * 1.05

    def test_larger_epsilon_needs_less_noise(self):
        tight = noise_multiplier_for_epsilon(1.0, 50, 0.2)
        loose = noise_multiplier_for_epsilon(32.0, 50, 0.2)
        assert loose < tight

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            noise_multiplier_for_epsilon(0.0, 10, 0.1)


class TestDPTrainer:
    def test_trains_without_crashing_and_reports_noise(self, tiny_vector_dataset):
        model = factory()
        trainer = DPTrainer(model, DPConfig(epsilon=8.0, lr=0.05), seed=0)
        losses = trainer.train(tiny_vector_dataset, epochs=2, batch_size=16, seed=0)
        assert len(losses) == 2
        assert trainer.resolved_noise_multiplier > 0
        assert trainer.steps_taken > 0

    def test_explicit_noise_multiplier_respected(self, tiny_vector_dataset):
        model = factory()
        trainer = DPTrainer(
            model, DPConfig(epsilon=8.0, noise_multiplier=0.123, lr=0.05), seed=0
        )
        trainer.train(tiny_vector_dataset, epochs=1, batch_size=16, seed=0)
        assert trainer.resolved_noise_multiplier == 0.123

    def test_low_epsilon_hurts_accuracy_more(self, tiny_vector_dataset):
        def train_at(eps):
            model = factory()
            DPTrainer(model, DPConfig(epsilon=eps, lr=0.05), seed=0).train(
                tiny_vector_dataset, epochs=5, batch_size=16, seed=0
            )
            return evaluate_model(model, tiny_vector_dataset).accuracy

        # utility ordering: effectively-no-noise >> tight budget
        assert train_at(1e6) > train_at(0.5) - 0.05

    def test_adam_variant(self, tiny_vector_dataset):
        model = factory()
        trainer = DPTrainer(model, DPConfig(epsilon=8.0, optimizer="adam", lr=0.01), seed=0)
        losses = trainer.train(tiny_vector_dataset, epochs=1, batch_size=16, seed=0)
        assert np.isfinite(losses[0])

    def test_invalid_optimizer(self):
        with pytest.raises(ValueError):
            DPTrainer(factory(), DPConfig(optimizer="rmsprop"))

    def test_clipping_bounds_update(self, tiny_vector_dataset):
        """With zero noise, the summed clipped gradient norm <= batch * C."""
        model = factory()
        config = DPConfig(epsilon=8.0, noise_multiplier=0.0, clip_norm=0.01, lr=1.0)
        trainer = DPTrainer(model, config, seed=0)
        inputs = tiny_vector_dataset.inputs[:8]
        labels = tiny_vector_dataset.labels[:8]
        trainer._dp_step(inputs, labels, noise=0.0)
        total = math.sqrt(
            sum(float(np.sum(p.grad**2)) for p in model.parameters() if p.grad is not None)
        )
        assert total <= 0.01 + 1e-9  # mean of 8 clipped-to-0.01 gradients


class TestDPClient:
    def test_federated_dp_round(self, tiny_vector_dataset):
        shards = partition_iid(tiny_vector_dataset, 2, seed=0)
        clients = [
            DPClient(
                i, shards[i], factory, DPConfig(epsilon=8.0, lr=0.05),
                config=ClientConfig(lr=0.05), seed=i, total_rounds=3,
            )
            for i in range(2)
        ]
        server = FLServer(factory)
        sim = FederatedSimulation(server, clients)
        history = sim.run(3)
        assert history.rounds == 3
        assert all(np.isfinite(l) for losses in history.train_losses for l in losses.values())
