"""CIP training: the Step-II objective (Eq. 4) and the alternating loop.

Step II learns the model parameters to minimize

.. math::

    \\mathcal{L}_m = \\frac{1}{n}\\sum_{z_t \\in D_t} l(\\theta, z_t)
                     - \\frac{\\lambda_m}{n} \\sum_{z \\in D} l(\\theta, z)

— i.e. fit the blended data while *pushing up* the loss on original
(unperturbed) data, so original members' outputs resemble non-members'.
"Original data" is presented to the dual-channel model as the zero-
perturbation blend (the pair an adversary without ``t`` would form).

:class:`CIPTrainer` runs the paper's alternating optimization: for every
mini-batch, Step I updates ``t`` (model frozen), then Step II updates the
model (``t`` frozen).  The two-step scheme is credited with halving the
epochs to converge (RQ5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.core.blending import blend
from repro.core.config import CIPConfig
from repro.core.perturbation import Perturbation
from repro.data.dataset import DataLoader, Dataset
from repro.fl.training import EvalResult
from repro.nn.layers import Module
from repro.nn.losses import cross_entropy
from repro.nn.optim import Optimizer
from repro.nn.tensor import Tensor, no_grad
from repro.utils.rng import SeedLike, as_generator, derive_rng

AugmentFn = Callable[[np.ndarray], np.ndarray]


def cip_model_loss(
    model: Module,
    perturbation: Perturbation,
    inputs: np.ndarray,
    labels: np.ndarray,
) -> Tensor:
    """The Step-II objective (Eq. 4) on one mini-batch."""
    config = perturbation.config
    # Term 1: fit the blended data.  t participates as a constant here
    # (Step II only moves theta), so blend with a detached copy.
    blended = blend(inputs, perturbation.t.detach(), config.alpha, config.clip_range)
    loss_blended = cross_entropy(model(blended), labels)
    if config.lambda_m == 0.0:
        return loss_blended
    # Term 2: push up the loss on original (zero-perturbation) data.
    original = blend(inputs, None, config.alpha, config.clip_range)
    per_sample = cross_entropy(model(original), labels, reduction="none")
    if config.original_loss_cap is not None:
        # Saturate the ascent *per sample* once a sample's original-data
        # loss reaches a non-member-typical level ("avoid abnormally high
        # loss", Section III-B2): each member is pushed up to the plateau
        # where its output "assembles other non-members", and no further.
        per_sample = per_sample.clip(float("-inf"), config.original_loss_cap)
    return loss_blended - config.lambda_m * per_sample.mean()


@dataclass
class CIPTrainHistory:
    """Per-epoch record of the alternating optimization."""

    model_losses: List[float] = field(default_factory=list)
    perturbation_losses: List[float] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        return len(self.model_losses)


class CIPTrainer:
    """Alternating Step-I / Step-II training of a dual-channel model."""

    def __init__(
        self,
        model: Module,
        perturbation: Perturbation,
        optimizer: Optimizer,
        config: Optional[CIPConfig] = None,
        augment: Optional[AugmentFn] = None,
    ) -> None:
        self.model = model
        self.perturbation = perturbation
        self.optimizer = optimizer
        self.config = config or perturbation.config
        self.augment = augment
        self.history = CIPTrainHistory()

    def train_epoch(
        self, dataset: Dataset, batch_size: int = 32, seed: SeedLike = None
    ) -> float:
        """One epoch of alternating optimization; returns mean Step-II loss."""
        self.model.train()
        loader = DataLoader(dataset, batch_size=batch_size, shuffle=True, seed=seed)
        total_model = 0.0
        total_pert = 0.0
        count = 0
        for inputs, labels in loader:
            if self.augment is not None:
                inputs = self.augment(inputs)
            # Step I: shape t against the current model.
            pert_obj = self.perturbation.optimize(self.model, inputs, labels)
            # Step II: fit the model against the current t.
            self.optimizer.zero_grad()
            loss = cip_model_loss(self.model, self.perturbation, inputs, labels)
            loss.backward()
            self.optimizer.step()
            total_model += loss.item() * len(labels)
            if not np.isnan(pert_obj):
                total_pert += pert_obj * len(labels)
            count += len(labels)
        mean_model = total_model / max(count, 1)
        self.history.model_losses.append(mean_model)
        self.history.perturbation_losses.append(total_pert / max(count, 1))
        return mean_model

    def train(
        self,
        dataset: Dataset,
        epochs: int,
        batch_size: int = 32,
        seed: SeedLike = None,
    ) -> CIPTrainHistory:
        for epoch in range(epochs):
            self.train_epoch(dataset, batch_size=batch_size, seed=derive_rng(seed, epoch))
        return self.history

    # -- client-side inference --------------------------------------------
    def evaluate(self, dataset: Dataset, batch_size: int = 64) -> EvalResult:
        """Accuracy with inputs blended with the client's own ``t``.

        This is the accuracy CIP reports: at inference time each client adds
        its perturbation to every query (Section III-A).
        """
        return evaluate_with_perturbation(
            self.model, self.perturbation.value, dataset, self.config, batch_size
        )


def evaluate_with_perturbation(
    model: Module,
    t_value: Optional[np.ndarray],
    dataset: Dataset,
    config: CIPConfig,
    batch_size: int = 64,
) -> EvalResult:
    """Evaluate a dual-channel model with inputs blended using ``t_value``.

    ``t_value=None`` evaluates with the zero-perturbation blend — what an
    outsider (or an adaptive attacker without ``t``) measures.
    """
    model.eval()
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=False)
    total_loss = 0.0
    correct = 0
    count = 0
    with no_grad():
        for inputs, labels in loader:
            blended = blend(inputs, t_value, config.alpha, config.clip_range)
            logits = model(blended)
            loss = cross_entropy(logits, labels)
            total_loss += loss.item() * len(labels)
            correct += int((logits.argmax(axis=1) == labels).sum())
            count += len(labels)
    if count == 0:
        return EvalResult(loss=0.0, accuracy=0.0, num_samples=0)
    return EvalResult(loss=total_loss / count, accuracy=correct / count, num_samples=count)


def predict_logits_with_perturbation(
    model: Module,
    t_value: Optional[np.ndarray],
    inputs: np.ndarray,
    config: CIPConfig,
    batch_size: int = 128,
) -> np.ndarray:
    """Batched logits of a dual-channel model under a chosen perturbation."""
    model.eval()
    outputs: List[np.ndarray] = []
    with no_grad():
        for start in range(0, len(inputs), batch_size):
            chunk = inputs[start : start + batch_size]
            blended = blend(chunk, t_value, config.alpha, config.clip_range)
            outputs.append(model(blended).data)
    if not outputs:
        return np.zeros((0,))
    return np.concatenate(outputs, axis=0)
