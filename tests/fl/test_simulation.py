"""Federated simulation orchestration."""

import numpy as np
import pytest

from repro.data.partition import partition_iid
from repro.fl.client import ClientConfig, FLClient
from repro.fl.server import FLServer
from repro.fl.simulation import FederatedSimulation
from repro.fl.training import evaluate_model
from repro.nn.models import build_model
from repro.nn.optim import SGD, StepDecaySchedule


def factory():
    return build_model("mlp", 3, in_features=10, hidden=(16,), seed=0)


def build_sim(dataset, num_clients=3, snapshot_rounds=(), eval_dataset=None, eval_every=0):
    shards = partition_iid(dataset, num_clients, seed=0)
    server = FLServer(factory)
    clients = [
        FLClient(i, shards[i], factory, ClientConfig(lr=0.05), seed=i)
        for i in range(num_clients)
    ]
    return FederatedSimulation(
        server,
        clients,
        snapshot_rounds=snapshot_rounds,
        eval_dataset=eval_dataset,
        eval_every=eval_every,
    )


class TestSimulation:
    def test_runs_and_records_history(self, tiny_vector_dataset):
        sim = build_sim(tiny_vector_dataset)
        history = sim.run(4)
        assert history.rounds == 4
        assert all(len(losses) == 3 for losses in history.train_losses)

    def test_learning_happens(self, tiny_vector_dataset):
        sim = build_sim(tiny_vector_dataset)
        before = evaluate_model(sim.server.model, tiny_vector_dataset).accuracy
        sim.run(12)
        after = evaluate_model(sim.server.model, tiny_vector_dataset).accuracy
        assert after > before

    def test_snapshots_recorded_at_requested_rounds(self, tiny_vector_dataset):
        sim = build_sim(tiny_vector_dataset, snapshot_rounds=[1, 3])
        sim.run(5)
        rounds = [snap.round_index for snap in sim.history.snapshots]
        assert rounds == [1, 3]
        snap = sim.history.snapshots[0]
        assert set(snap.client_states) == {0, 1, 2}

    def test_snapshot_after_state_is_aggregate_of_clients(self, tiny_vector_dataset):
        from repro.fl.aggregation import fedavg, flatten_state

        sim = build_sim(tiny_vector_dataset, snapshot_rounds=[2])
        sim.run(3)
        snap = sim.history.snapshots[0]
        sizes = [len(c.dataset) for c in sim.clients]
        expected = fedavg(list(snap.client_states.values()), weights=sizes)
        np.testing.assert_allclose(
            flatten_state(snap.global_state_after), flatten_state(expected), atol=1e-10
        )

    def test_eval_history(self, tiny_vector_dataset):
        sim = build_sim(
            tiny_vector_dataset, eval_dataset=tiny_vector_dataset, eval_every=2
        )
        sim.run(4)
        assert len(sim.history.test_accuracy) == 2
        assert np.isfinite(sim.history.final_test_accuracy())

    def test_client_loss_series(self, tiny_vector_dataset):
        sim = build_sim(tiny_vector_dataset)
        sim.run(3)
        series = sim.history.client_loss_series(1)
        assert series.shape == (3,)

    def test_lr_schedule_applied(self, tiny_vector_dataset):
        sim = build_sim(tiny_vector_dataset)
        pilot = SGD([factory().parameters()[0]], lr=1.0)
        schedule = StepDecaySchedule(pilot, rates=[1e-1, 1e-2], milestones=[2])
        sim.lr_schedule = schedule
        sim.run(3)
        assert all(c._optimizer.lr == 1e-2 for c in sim.clients)

    def test_requires_clients(self, tiny_vector_dataset):
        with pytest.raises(ValueError):
            FederatedSimulation(FLServer(factory), [])

    def test_evaluate_clients(self, tiny_vector_dataset):
        sim = build_sim(tiny_vector_dataset)
        sim.run(2)
        accs = sim.evaluate_clients(tiny_vector_dataset)
        assert len(accs) == 3
        # standard clients all evaluate the same global model
        assert max(accs) - min(accs) < 1e-12
