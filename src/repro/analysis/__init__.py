"""Result analysis: the paper's published numbers + shape-agreement stats.

Example — compare a measured Table-V sweep to the paper's::

    from repro.analysis import compare_sweeps, paper_reference as ref

    alphas, published = ref.table5_sweep("cifar100")
    report = compare_sweeps(measured_accuracies, published)
    assert report.trend_match
"""

from repro.analysis import paper_reference
from repro.analysis.shape import (
    ShapeReport,
    compare_sweeps,
    ordering_agreement,
    spearman_rank_correlation,
    trend_agreement,
    trend_direction,
)

__all__ = [
    "paper_reference",
    "ShapeReport",
    "compare_sweeps",
    "spearman_rank_correlation",
    "trend_direction",
    "trend_agreement",
    "ordering_agreement",
]
