"""Shared utilities: deterministic RNG management, logging, timing."""

from repro.utils.rng import RngMixin, derive_rng, spawn_rngs
from repro.utils.logging import get_logger
from repro.utils.timer import Timer

__all__ = ["RngMixin", "derive_rng", "spawn_rngs", "get_logger", "Timer"]
