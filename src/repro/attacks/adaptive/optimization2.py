"""[Optimization-2] Active alteration + optimization (Table VII).

A malicious server *descends* the loss on a target dataset in the model it
broadcasts to the victim, then observes the victim's returned model: because
CIP's Step-II objective pushes the loss on original member data *up*, member
samples bounce back to higher loss than non-members after the victim's local
update.  The adversary classifies larger-loss samples as members.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import sigmoid
from repro.attacks.internal import (
    ForwardFn,
    InternalAttackReport,
    StateEvaluator,
    _evaluate_scores,
    plain_forward,
)
from repro.data.dataset import Dataset
from repro.fl.malicious import GradientAscentHook
from repro.fl.simulation import FederatedSimulation
from repro.nn.layers import Module


class ActiveAlterationAttack:
    """Descend-on-targets, then threshold the victim's post-update loss."""

    name = "Adaptive-Optimization-2"

    def __init__(
        self,
        evaluator: StateEvaluator,
        descent_model: Module,
        victim_id: int = 0,
        descent_lr: float = 5e-2,
        descent_steps: int = 1,
        forward: ForwardFn = plain_forward,
    ) -> None:
        self.evaluator = evaluator
        self.descent_model = descent_model
        self.victim_id = victim_id
        self.descent_lr = descent_lr
        self.descent_steps = descent_steps
        self.forward = forward

    def run(
        self,
        simulation: FederatedSimulation,
        members: Dataset,
        nonmembers: Dataset,
        attack_rounds: int = 3,
    ) -> InternalAttackReport:
        inputs = np.concatenate([members.inputs, nonmembers.inputs])
        labels = np.concatenate([members.labels, nonmembers.labels])
        # Descent = gradient ascent with a negative step.
        hook = GradientAscentHook(
            self.descent_model,
            inputs,
            labels,
            ascent_lr=-self.descent_lr,
            ascent_steps=self.descent_steps,
            victim_id=self.victim_id,
            forward=self.forward,
        )
        previous_hook = simulation.server.broadcast_hook
        simulation.server.broadcast_hook = hook
        post_losses = np.zeros(len(inputs))
        try:
            for _ in range(attack_rounds):
                updates = simulation.run_round()
                victim_state = next(
                    u.state for u in updates if u.client_id == self.victim_id
                )
                post_losses += self.evaluator.per_sample_loss(victim_state, inputs, labels)
        finally:
            simulation.server.broadcast_hook = previous_hook
        post_losses /= attack_rounds

        member_losses = post_losses[: len(members)]
        nonmember_losses = post_losses[len(members) :]
        half_m = len(member_losses) // 2
        half_n = len(nonmember_losses) // 2
        threshold = (member_losses[:half_m].mean() + nonmember_losses[:half_n].mean()) / 2.0
        spread = max(
            abs(member_losses[:half_m].mean() - nonmember_losses[:half_n].mean()) / 2.0, 1e-6
        )
        # Larger loss after the victim's update -> member.
        member_scores = sigmoid((member_losses[half_m:] - threshold) / spread)
        nonmember_scores = sigmoid((nonmember_losses[half_n:] - threshold) / spread)
        return _evaluate_scores(self.name, member_scores, nonmember_scores)
