"""Markdown report generation for reproduction runs.

:func:`generate_report` runs a set of registered experiments and renders a
single markdown document: one section per experiment with its result table
and, where the paper's reference data covers the same sweep
(:mod:`repro.analysis.paper_reference`), a shape-agreement verdict.

Used by ``python -m repro.experiments --report`` and by downstream users who
want a one-command artifact of their own runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis import compare_sweeps, paper_reference as ref
from repro.experiments.profiles import Profile, QUICK
from repro.experiments.registry import get_experiment, list_experiments, run_experiment
from repro.experiments.results import ExperimentResult


def _markdown_table(result: ExperimentResult) -> str:
    headers = list(result.columns)
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in result.rows:
        cells = []
        for column in headers:
            value = row.get(column, "")
            cells.append(f"{value:.3f}" if isinstance(value, float) else str(value))
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def _shape_section(result: ExperimentResult) -> Optional[str]:
    """Shape-agreement paragraph for experiments with paper reference sweeps."""
    scorers = {
        "table5": _score_table5,
        "table6": _score_table6,
        "table10": _score_table10,
    }
    scorer = scorers.get(result.experiment_id)
    if scorer is None:
        return None
    lines = scorer(result)
    if not lines:
        return None
    return "Shape agreement vs the paper:\n\n" + "\n".join(f"* {line}" for line in lines)


def _sweep_lines(
    result: ExperimentResult,
    value_column: str,
    published_by_dataset,
    key_column: str = "alpha",
) -> List[str]:
    lines = []
    for dataset in sorted({row["dataset"] for row in result.rows}):
        rows = sorted(
            (r for r in result.rows if r["dataset"] == dataset),
            key=lambda r: r[key_column],
        )
        if len(rows) < 2:
            continue
        measured = [r[value_column] for r in rows]
        paper_row = published_by_dataset[dataset]
        published = [
            paper_row[min(paper_row, key=lambda k: abs(k - r[key_column]))] for r in rows
        ]
        report = compare_sweeps(measured, published, trend_tolerance=0.02)
        verdict = "OK" if report.agrees else "DEV"
        lines.append(
            f"{dataset}: spearman {report.spearman:+.2f}, "
            f"trend {'matches' if report.trend_match else 'differs'}, "
            f"ordering {report.ordering:.2f} -> {verdict}"
        )
    return lines


def _score_table5(result: ExperimentResult) -> List[str]:
    lines = []
    for row in result.rows:
        dataset = row["dataset"]
        alphas = sorted(
            float(c.split("_", 1)[1]) for c in row if c.startswith("alpha_") and c != "alpha_0"
        )
        measured = [row[f"alpha_{a}"] for a in alphas]
        paper_row = ref.TABLE5_ACCURACY[dataset]
        published = [paper_row[min((k for k in paper_row if k > 0), key=lambda k: abs(k - a))] for a in alphas]
        report = compare_sweeps(measured, published, trend_tolerance=0.02)
        verdict = "OK" if report.agrees else "DEV"
        lines.append(
            f"{dataset}: spearman {report.spearman:+.2f}, ordering {report.ordering:.2f} -> {verdict}"
        )
    return lines


def _score_table6(result: ExperimentResult) -> List[str]:
    published = {d: {a: v[1] for a, v in row.items()} for d, row in ref.TABLE6_OPT1.items()}
    return _sweep_lines(result, "external_acc", published)


def _score_table10(result: ExperimentResult) -> List[str]:
    return _sweep_lines(result, "attack_acc", ref.TABLE10_INVERSE)


def generate_report(
    experiment_ids: Optional[Sequence[str]] = None,
    profile: Profile = QUICK,
) -> str:
    """Run experiments and render one markdown report."""
    ids = list(experiment_ids) if experiment_ids else [
        spec.experiment_id for spec in list_experiments()
    ]
    sections = [
        "# CIP reproduction report",
        "",
        f"Profile: `{profile.name}`.  See EXPERIMENTS.md for the paper-vs-measured discussion.",
        "",
    ]
    for experiment_id in ids:
        spec = get_experiment(experiment_id)
        result = run_experiment(experiment_id, profile)
        sections.append(f"## {spec.paper_reference} — {spec.title} (`{experiment_id}`)")
        sections.append("")
        sections.append(_markdown_table(result))
        sections.append("")
        for note in result.notes:
            sections.append(f"> {note}")
        shape = _shape_section(result)
        if shape:
            sections.append("")
            sections.append(shape)
        sections.append("")
    return "\n".join(sections)
