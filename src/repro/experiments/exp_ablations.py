"""Ablations of CIP's design choices (DESIGN.md section 5).

Not tables in the paper, but each isolates a mechanism the paper credits:

* **dual vs single channel** — Fig. 3's second channel is motivated by
  utility: a single-channel model fed only ``(1-a)x + a t`` loses the
  over-weighted original-sample channel.
* **lambda_m** — Eq. (4)'s loss-maximization weight: too large invites the
  inverse-MI attack (Table X's rationale), zero removes the member-loss
  shaping.
* **shared vs personalized t** — personalization drives the non-i.i.d.
  utility gain (RQ2); forcing all clients onto one ``t`` removes it.
"""

from __future__ import annotations

import numpy as np

from repro.attacks import evaluate_attack
from repro.attacks.adaptive import InverseMIAttack
from repro.attacks.ob_malt import ObMALTAttack
from repro.core.blending import blend
from repro.core.cip_client import CIPClient
from repro.core.perturbation import Perturbation
from repro.core.trainer import CIPTrainer
from repro.data.partition import partition_by_classes
from repro.experiments.common import (
    attack_pools,
    get_bundle,
    make_cip_config,
    run_federated,
    train_cip,
)
from repro.experiments.profiles import Profile
from repro.experiments.registry import register
from repro.experiments.results import ExperimentResult
from repro.fl.client import ClientConfig
from repro.fl.server import FLServer
from repro.data.benchmarks import default_training
from repro.nn.layers import Module
from repro.nn.losses import cross_entropy
from repro.nn.models import build_model
from repro.nn.optim import SGD
from repro.nn.tensor import Tensor, no_grad
from repro.utils.rng import derive_rng

ABLATION_ALPHA = 0.5


class _SingleChannelCIP:
    """CIP variant feeding only the first blended channel to a plain model."""

    def __init__(self, bundle, profile: Profile, seed: int = 0) -> None:
        self.config = make_cip_config("cifar100", ABLATION_ALPHA)
        self.model = build_model(
            "resnet",
            bundle.num_classes,
            in_channels=bundle.train.inputs.shape[1],
            seed=derive_rng(seed, "sc"),
        )
        self.perturbation = Perturbation(
            bundle.train.input_shape, self.config, seed=derive_rng(seed, "sc-t")
        )
        self.optimizer = SGD(self.model.parameters(), lr=5e-2, momentum=0.9)
        self.bundle = bundle

    def _forward(self, inputs: np.ndarray) -> Tensor:
        channel_a, _ = blend(
            inputs, self.perturbation.t.detach(), self.config.alpha, self.config.clip_range
        )
        return self.model(channel_a)

    def train(self, epochs: int, seed: int = 0) -> None:
        from repro.data.dataset import DataLoader

        for epoch in range(epochs):
            loader = DataLoader(
                self.bundle.train, batch_size=32, shuffle=True, seed=derive_rng(seed, epoch)
            )
            for inputs, labels in loader:
                # Step I on the single channel.
                self.model.eval()
                channel_a, _ = blend(
                    inputs, self.perturbation.t, self.config.alpha, self.config.clip_range
                )
                step1 = cross_entropy(self.model(channel_a), labels)
                self.perturbation._optimizer.zero_grad()
                step1.backward()
                self.perturbation._optimizer.step()
                self.model.zero_grad()
                self.model.train()
                # Step II on the single channel.
                self.optimizer.zero_grad()
                loss = cross_entropy(self._forward(inputs), labels)
                loss.backward()
                self.optimizer.step()

    def accuracy(self, dataset) -> float:
        self.model.eval()
        correct = 0
        with no_grad():
            for start in range(0, len(dataset), 64):
                inputs = dataset.inputs[start : start + 64]
                labels = dataset.labels[start : start + 64]
                logits = self._forward(inputs)
                correct += int((logits.argmax(axis=1) == labels).sum())
        return correct / len(dataset)

    def target(self) -> "_SingleChannelTarget":
        return _SingleChannelTarget(self)


class _SingleChannelTarget:
    """Adversary view of the single-channel variant (zero-guess blend)."""

    def __init__(self, defense: "_SingleChannelCIP") -> None:
        self._defense = defense
        self.num_classes = defense.bundle.num_classes

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        self._defense.model.eval()
        outputs = []
        with no_grad():
            for start in range(0, len(inputs), 128):
                chunk = inputs[start : start + 128]
                channel_a, _ = blend(
                    chunk, None, self._defense.config.alpha, self._defense.config.clip_range
                )
                outputs.append(self._defense.model(channel_a).data)
        return np.concatenate(outputs, axis=0)

    def per_sample_loss(self, inputs: np.ndarray, labels: np.ndarray) -> np.ndarray:
        from repro.nn.losses import per_sample_cross_entropy

        return per_sample_cross_entropy(self.predict(inputs), labels)


@register("ablation_dual_channel", "Dual vs single channel trade-off", "Fig. 3 rationale")
def ablation_dual_channel(profile: Profile) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="ablation_dual_channel",
        title="Utility and privacy: dual-channel CIP vs single-channel variant",
        columns=["variant", "test_acc", "malt_attack_acc"],
    )
    bundle = get_bundle("cifar100", profile)
    recipe = default_training("cifar100")
    epochs = profile.epochs(recipe.epochs)
    data = attack_pools(bundle, profile)

    dual = train_cip("cifar100", ABLATION_ALPHA, profile)
    dual_attack = evaluate_attack(ObMALTAttack(), dual.target(), data)
    result.add_row(
        variant="dual_channel",
        test_acc=dual.trainer.evaluate(bundle.test).accuracy,
        malt_attack_acc=dual_attack.accuracy,
    )

    single = _SingleChannelCIP(bundle, profile)
    single.train(epochs)
    single_attack = evaluate_attack(ObMALTAttack(), single.target(), data)
    result.add_row(
        variant="single_channel",
        test_acc=single.accuracy(bundle.test),
        malt_attack_acc=single_attack.accuracy,
    )
    result.add_note(
        "the paper motivates the second channel by utility; measure both axes"
    )
    return result


@register("ablation_lambda_m", "Effect of the loss-maximization weight", "Eq. 4 / Table X rationale")
def ablation_lambda_m(profile: Profile) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="ablation_lambda_m",
        title="lambda_m: utility vs inverse-MI exposure",
        columns=["lambda_m", "test_acc", "malt_attack_acc", "inverse_mi_acc"],
    )
    for lambda_m in (0.0, 1e-6, 1e-1):
        artifact = train_cip("cifar100", ABLATION_ALPHA, profile, lambda_m=lambda_m)
        data = attack_pools(artifact.bundle, profile)
        malt = evaluate_attack(ObMALTAttack(), artifact.target(), data)
        inverse = evaluate_attack(InverseMIAttack(), artifact.target(), data)
        result.add_row(
            lambda_m=f"{lambda_m:.0e}" if lambda_m else "0",
            test_acc=artifact.trainer.evaluate(artifact.bundle.test).accuracy,
            malt_attack_acc=malt.accuracy,
            inverse_mi_acc=inverse.accuracy,
        )
    result.add_note("large lambda_m makes original-data loss abnormal -> inverse MI gains")
    return result


@register("ablation_shared_t", "Personalized vs shared perturbation", "RQ2 rationale")
def ablation_shared_t(profile: Profile) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="ablation_shared_t",
        title="Non-i.i.d. FL accuracy: per-client t vs one shared t",
        columns=["variant", "mean_client_test_acc"],
    )
    bundle = get_bundle("cifar100", profile)
    num_clients = 3
    shards = partition_by_classes(
        bundle.train, num_clients, classes_per_client=8, seed=derive_rng(0, "abl-p")
    )
    config = make_cip_config("cifar100", ABLATION_ALPHA)
    in_channels = bundle.train.inputs.shape[1]
    factory = lambda: build_model(  # noqa: E731
        "resnet", bundle.num_classes, dual_channel=True, in_channels=in_channels,
        seed=derive_rng(0, "abl-m"),
    )

    def run(shared: bool) -> float:
        shared_seed = derive_rng(0, "abl-shared-t")
        shared_t = (
            Perturbation(bundle.train.input_shape, config, seed=shared_seed).value
            if shared
            else None
        )
        clients = [
            CIPClient(
                i, shards[i], factory, cip_config=config, config=ClientConfig(lr=5e-2),
                seed=derive_rng(0, "abl-c", i),
                initial_t=shared_t,
            )
            for i in range(num_clients)
        ]
        if shared:
            # Freeze Step I so every client keeps the identical t.
            for client in clients:
                client.perturbation.optimize = lambda *a, **k: float("nan")
        server = FLServer(factory)
        simulation = run_federated(server, clients, profile.fl_rounds)
        return float(np.mean(simulation.evaluate_clients(bundle.test)))

    result.add_row(variant="personalized_t", mean_client_test_acc=run(shared=False))
    result.add_row(variant="shared_frozen_t", mean_client_test_acc=run(shared=True))
    result.add_note("personalized t shifts heterogeneous client distributions together")
    return result
