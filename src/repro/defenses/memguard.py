"""MemGuard (Jia et al., CCS'19): output-perturbation defense.

MemGuard leaves the model untouched and adds a carefully bounded noise
vector to each *returned* posterior so that a membership classifier is
fooled, while the predicted label never changes (utility constraint).

The paper's Section I argument — and the reason CIP exists — is that output
perturbation is **ineffective in federated learning**: a malicious server or
client holds the model parameters and can simply query it *without* the
output filter.  :class:`MemGuardDefense` implements the filter so that
argument can be demonstrated experimentally: attacks routed through
:meth:`predict` are blunted, attacks with white-box access
(:class:`repro.attacks.PlainTarget` on the raw model) are untouched.

Implementation note: the original crafts adversarial noise against a
defender-trained attack classifier; we implement the equivalent
entropy-maximizing variant — mix each posterior toward uniform as far as
possible without changing the argmax and within an L1 distortion budget —
which has the same observable effect (confidence patterns of members and
non-members become indistinguishable).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.attacks.base import TargetModel
from repro.nn.layers import Module


class MemGuardDefense(TargetModel):
    """A query interface that perturbs posteriors label-preservingly.

    Wraps an inner target (black-box access point); exposes the standard
    :class:`~repro.attacks.base.TargetModel` surface so output-based attacks
    can be evaluated against the *filtered* predictions.
    """

    def __init__(
        self,
        inner: TargetModel,
        distortion_budget: float = 0.8,
        seed: Optional[int] = 0,
    ) -> None:
        super().__init__(inner.module, inner.num_classes)
        if not 0.0 <= distortion_budget <= 2.0:
            raise ValueError("L1 distortion budget must be in [0, 2]")
        self.inner = inner
        self.distortion_budget = distortion_budget

    def predict_proba(self, inputs: np.ndarray) -> np.ndarray:
        """Posteriors after the MemGuard filter."""
        raw = self.inner.predict_proba(inputs)
        return self.filter_posteriors(raw)

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Log-posteriors after filtering (what a logits consumer sees)."""
        filtered = self.predict_proba(inputs)
        return np.log(np.clip(filtered, 1e-12, None))

    def filter_posteriors(self, posteriors: np.ndarray) -> np.ndarray:
        """Mix each posterior toward uniform without changing the argmax.

        For each sample we find the largest mixing weight ``w`` such that
        (i) the predicted label is preserved and (ii) the L1 change stays
        within the distortion budget, then apply it.  Mixing toward uniform
        is the entropy-maximizing direction — it erases the low-entropy
        signature of memorized members.
        """
        posteriors = np.asarray(posteriors, dtype=np.float64)
        n, k = posteriors.shape
        uniform = np.full(k, 1.0 / k)
        top = posteriors.argmax(axis=1)
        runner_up = np.partition(posteriors, -2, axis=1)[:, -2]
        top_value = posteriors[np.arange(n), top]

        # Label preservation: after mixing, top must still beat runner-up:
        # (1-w)(top - runner) > 0 always holds for w < 1, but ties appear at
        # w = 1; cap w slightly below the tie point, and within the budget.
        distortion = np.abs(posteriors - uniform).sum(axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            budget_w = np.where(
                distortion > 0, self.distortion_budget / distortion, 1.0
            )
        gap = top_value - runner_up
        tie_w = np.where(gap > 0, 1.0 - 1e-6, 0.0)
        w = np.clip(np.minimum(budget_w, tie_w), 0.0, 1.0 - 1e-6)[:, None]
        mixed = (1.0 - w) * posteriors + w * uniform
        # Renormalize against numerical drift.
        return mixed / mixed.sum(axis=1, keepdims=True)

    # White-box surface: MemGuard does NOT protect parameters — that is the
    # point of the paper's critique.  Gradient queries fall through to the
    # unfiltered model.
    def per_sample_grad_norms(self, inputs: np.ndarray, labels: np.ndarray) -> np.ndarray:
        return self.inner.per_sample_grad_norms(inputs, labels)

    def _forward_tensor(self, inputs: np.ndarray):
        return self.inner._forward_tensor(inputs)


def label_preservation_rate(
    defense: MemGuardDefense, inputs: np.ndarray
) -> float:
    """Fraction of queries whose predicted label survives the filter (=1.0)."""
    raw = defense.inner.predict_proba(inputs)
    filtered = defense.filter_posteriors(raw)
    return float((raw.argmax(axis=1) == filtered.argmax(axis=1)).mean())
