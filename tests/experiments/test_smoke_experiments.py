"""Every registered experiment runs end-to-end at the SMOKE profile.

These are integration tests for the full paper-reproduction harness: each
experiment trains real (tiny) models, runs real attacks, and must return a
well-formed result table.  Scientific assertions live in the benchmarks and
in test_integration.py; here we verify the machinery.
"""

import numpy as np
import pytest

from repro.experiments import (
    SMOKE,
    format_table,
    get_experiment,
    list_experiments,
    run_experiment,
)

ALL_IDS = sorted(spec.experiment_id for spec in list_experiments())


@pytest.mark.parametrize("experiment_id", ALL_IDS)
def test_experiment_runs_at_smoke_profile(experiment_id):
    result = run_experiment(experiment_id, SMOKE)
    assert result.experiment_id == experiment_id
    assert result.rows, f"{experiment_id} produced no rows"
    for row in result.rows:
        for column in result.columns:
            assert column in row, f"{experiment_id} row missing {column}"
    # formatting never crashes
    text = format_table(result)
    assert experiment_id in text
    # numeric cells are finite or NaN-by-design (budget of 'none' defenses)
    for row in result.rows:
        for value in row.values():
            if isinstance(value, float) and not np.isnan(value):
                assert np.isfinite(value)
