"""Loss-distribution diagnostics (Figure 1)."""

import numpy as np
import pytest

from repro.metrics.distribution import (
    loss_histogram,
    overlap_coefficient,
    render_ascii_histogram,
    separability_gap,
)


class TestHistogram:
    def test_shared_bins(self):
        member = np.array([0.0, 0.1, 0.2])
        nonmember = np.array([2.0, 2.1, 2.2])
        hist = loss_histogram(member, nonmember, bins=10)
        assert len(hist.bin_edges) == 11
        assert hist.bin_edges[0] == 0.0 and hist.bin_edges[-1] == pytest.approx(2.2)
        assert len(hist.bin_centers) == 10

    def test_densities_integrate_to_one(self):
        rng = np.random.default_rng(0)
        hist = loss_histogram(rng.normal(size=100), rng.normal(2, 1, 100), bins=20)
        widths = np.diff(hist.bin_edges)
        assert (hist.member_density * widths).sum() == pytest.approx(1.0)
        assert (hist.nonmember_density * widths).sum() == pytest.approx(1.0)

    def test_degenerate_constant_losses(self):
        hist = loss_histogram(np.zeros(5), np.zeros(5))
        assert np.isfinite(hist.member_density).all()


class TestOverlap:
    def test_disjoint_populations(self):
        assert overlap_coefficient(np.zeros(50), np.full(50, 10.0)) < 0.1

    def test_identical_populations(self):
        rng = np.random.default_rng(1)
        samples = rng.normal(size=500)
        assert overlap_coefficient(samples, samples) == pytest.approx(1.0)

    def test_partial_overlap_in_between(self):
        rng = np.random.default_rng(2)
        a = rng.normal(0, 1, 500)
        b = rng.normal(1, 1, 500)
        value = overlap_coefficient(a, b)
        assert 0.2 < value < 0.9


class TestGapAndRendering:
    def test_separability_gap_sign(self):
        assert separability_gap(np.zeros(3), np.ones(3)) == 1.0
        assert separability_gap(np.ones(3), np.zeros(3)) == -1.0

    def test_ascii_render_has_one_line_per_bin(self):
        rng = np.random.default_rng(3)
        hist = loss_histogram(rng.normal(size=50), rng.normal(2, 1, 50), bins=12)
        text = render_ascii_histogram(hist)
        assert len(text.splitlines()) == 12
