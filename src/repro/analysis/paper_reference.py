"""The paper's published numbers, as structured data.

Transcribed from the evaluation section of Yang et al. (DSN'23) so the
reproduction can be compared *quantitatively* to the paper: rank
correlations of sweeps, sign agreement of trends, ordering of defenses.
Every table below cites its source table/figure; values are exactly as
printed (including the paper's typo in Table VII, CIFAR-100 at alpha=0.7,
printed as "584" and interpreted as 0.584).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

# ----------------------------------------------------------------------
# Table I — internal setup: legacy federated models on CIFAR-100.
# (model, clients) -> (train_iterations, train_acc, test_acc)
# ----------------------------------------------------------------------
TABLE1_LEGACY: Dict[Tuple[str, int], Tuple[int, float, float]] = {
    ("resnet", 2): (120, 0.970, 0.545),
    ("resnet", 5): (300, 0.985, 0.543),
    ("resnet", 10): (500, 0.975, 0.529),
    ("resnet", 20): (800, 0.957, 0.357),
    ("resnet", 50): (1500, 0.924, 0.328),
    ("densenet", 2): (300, 0.943, 0.565),
    ("densenet", 5): (600, 0.921, 0.587),
    ("densenet", 10): (1000, 0.929, 0.504),
    ("densenet", 20): (1500, 0.932, 0.372),
    ("densenet", 50): (3000, 0.948, 0.332),
    ("vgg", 2): (300, 0.907, 0.613),
    ("vgg", 5): (600, 0.882, 0.614),
    ("vgg", 10): (1000, 0.947, 0.541),
    ("vgg", 20): (1500, 0.982, 0.471),
    ("vgg", 50): (3000, 0.966, 0.424),
}

# ----------------------------------------------------------------------
# Table II — external setup. dataset -> (model, train_acc, test_acc)
# ----------------------------------------------------------------------
TABLE2_EXTERNAL: Dict[str, Tuple[str, float, float]] = {
    "cifar100": ("resnet", 0.998, 0.323),
    "cifar_aug": ("resnet", 0.986, 0.434),
    "chmnist": ("resnet", 0.993, 0.899),
    "purchase50": ("mlp", 0.991, 0.755),
}

# ----------------------------------------------------------------------
# Table III — heterogeneity sweep (5 clients, CIFAR-100).
# classes_per_client -> (cip, no_defense, local_training)
# ----------------------------------------------------------------------
TABLE3_HETEROGENEITY: Dict[int, Tuple[float, float, float]] = {
    20: (0.683, 0.611, 0.674),
    40: (0.676, 0.635, 0.616),
    60: (0.672, 0.653, 0.525),
    80: (0.670, 0.668, 0.483),
    100: (0.665, 0.672, 0.439),
}

# ----------------------------------------------------------------------
# Table IV — attack precision/recall/F1/accuracy against CIP (alpha=0.7).
# (dataset, attack) -> (precision, recall, f1, accuracy)
# ----------------------------------------------------------------------
TABLE4_ATTACK_METRICS: Dict[Tuple[str, str], Tuple[float, float, float, float]] = {
    ("cifar100", "Ob-Label"): (0.539, 0.256, 0.347, 0.518),
    ("cifar100", "Ob-MALT"): (0.598, 0.105, 0.178, 0.517),
    ("cifar100", "Ob-NN"): (0.509, 0.326, 0.397, 0.506),
    ("cifar100", "Ob-BlindMI"): (0.515, 0.468, 0.491, 0.515),
    ("cifar100", "Pb-Bayes"): (0.686, 0.447, 0.541, 0.621),
    ("cifar_aug", "Ob-Label"): (0.537, 0.388, 0.450, 0.527),
    ("cifar_aug", "Ob-MALT"): (0.522, 0.159, 0.244, 0.506),
    ("cifar_aug", "Ob-NN"): (0.484, 0.259, 0.373, 0.491),
    ("cifar_aug", "Ob-BlindMI"): (0.474, 0.022, 0.041, 0.499),
    ("cifar_aug", "Pb-Bayes"): (0.615, 0.235, 0.341, 0.544),
    ("chmnist", "Ob-Label"): (0.506, 0.451, 0.477, 0.506),
    ("chmnist", "Ob-MALT"): (0.523, 0.215, 0.305, 0.509),
    ("chmnist", "Ob-NN"): (0.497, 0.373, 0.426, 0.498),
    ("chmnist", "Ob-BlindMI"): (0.523, 0.263, 0.350, 0.511),
    ("chmnist", "Pb-Bayes"): (0.588, 0.317, 0.412, 0.548),
    ("purchase50", "Ob-Label"): (0.524, 0.234, 0.324, 0.511),
    ("purchase50", "Ob-MALT"): (0.534, 0.237, 0.328, 0.515),
    ("purchase50", "Ob-NN"): (0.506, 0.408, 0.451, 0.505),
    ("purchase50", "Ob-BlindMI"): (0.524, 0.371, 0.434, 0.517),
    ("purchase50", "Pb-Bayes"): (0.528, 0.357, 0.426, 0.519),
}

# ----------------------------------------------------------------------
# Table V — CIP test accuracy vs alpha. dataset -> {alpha: accuracy};
# alpha 0.0 is the no-defense baseline.
# ----------------------------------------------------------------------
TABLE5_ACCURACY: Dict[str, Dict[float, float]] = {
    "cifar100": {0.0: 0.323, 0.1: 0.335, 0.3: 0.328, 0.5: 0.327, 0.7: 0.323, 0.9: 0.316},
    "cifar_aug": {0.0: 0.434, 0.1: 0.474, 0.3: 0.457, 0.5: 0.436, 0.7: 0.422, 0.9: 0.398},
    "chmnist": {0.0: 0.899, 0.1: 0.921, 0.3: 0.904, 0.5: 0.905, 0.7: 0.903, 0.9: 0.892},
    "purchase50": {0.0: 0.755, 0.1: 0.768, 0.3: 0.757, 0.5: 0.754, 0.7: 0.755, 0.9: 0.741},
}

# ----------------------------------------------------------------------
# Table VI — Optimization-1 (internal/external) accuracy vs alpha.
# dataset -> {alpha: (internal, external)}
# ----------------------------------------------------------------------
TABLE6_OPT1: Dict[str, Dict[float, Tuple[float, float]]] = {
    "cifar100": {
        0.1: (0.950, 0.948), 0.3: (0.901, 0.892), 0.5: (0.769, 0.746),
        0.7: (0.698, 0.649), 0.9: (0.642, 0.606),
    },
    "cifar_aug": {
        0.1: (0.702, 0.681), 0.3: (0.669, 0.662), 0.5: (0.625, 0.618),
        0.7: (0.603, 0.586), 0.9: (0.578, 0.564),
    },
    "chmnist": {
        0.1: (0.653, 0.658), 0.3: (0.639, 0.631), 0.5: (0.622, 0.617),
        0.7: (0.608, 0.596), 0.9: (0.570, 0.573),
    },
    "purchase50": {
        0.1: (0.624, 0.614), 0.3: (0.609, 0.597), 0.5: (0.556, 0.545),
        0.7: (0.539, 0.536), 0.9: (0.541, 0.533),
    },
}

# ----------------------------------------------------------------------
# Table VII — Optimization-2 (active alteration) accuracy vs alpha.
# ----------------------------------------------------------------------
TABLE7_OPT2: Dict[str, Dict[float, float]] = {
    "cifar100": {0.1: 0.758, 0.3: 0.672, 0.5: 0.608, 0.7: 0.584, 0.9: 0.547},
    "cifar_aug": {0.1: 0.602, 0.3: 0.565, 0.5: 0.533, 0.7: 0.531, 0.9: 0.519},
    "chmnist": {0.1: 0.540, 0.3: 0.535, 0.5: 0.521, 0.7: 0.519, 0.9: 0.505},
    "purchase50": {0.1: 0.522, 0.3: 0.520, 0.5: 0.515, 0.7: 0.516, 0.9: 0.511},
}

# ----------------------------------------------------------------------
# Table VIII — Knowledge-1 (public seed) accuracy vs seed SSIM (alpha=0.7).
# ----------------------------------------------------------------------
TABLE8_K1: Dict[str, Dict[float, float]] = {
    "cifar100": {0.1: 0.575, 0.3: 0.586, 0.5: 0.607, 0.7: 0.618, 1.0: 0.624},
    "cifar_aug": {0.1: 0.542, 0.3: 0.551, 0.5: 0.550, 0.7: 0.562, 1.0: 0.569},
    "chmnist": {0.1: 0.532, 0.3: 0.534, 0.5: 0.549, 0.7: 0.566, 1.0: 0.571},
    "purchase50": {0.1: 0.518, 0.3: 0.521, 0.5: 0.525, 0.7: 0.534, 1.0: 0.538},
}

# ----------------------------------------------------------------------
# Table IX — Knowledge-2 (partial training data) accuracy vs known fraction.
# ----------------------------------------------------------------------
TABLE9_K2: Dict[str, Dict[float, float]] = {
    "cifar100": {0.2: 0.583, 0.4: 0.584, 0.6: 0.572, 0.8: 0.575},
    "cifar_aug": {0.2: 0.533, 0.4: 0.531, 0.6: 0.536, 0.8: 0.535},
    "chmnist": {0.2: 0.532, 0.4: 0.525, 0.6: 0.537, 0.8: 0.539},
    "purchase50": {0.2: 0.528, 0.4: 0.519, 0.6: 0.517, 0.8: 0.524},
}

# ----------------------------------------------------------------------
# Knowledge-3 (in-text, i.i.d. CIFAR-100).
# ----------------------------------------------------------------------
KNOWLEDGE3 = {
    "test_acc_substitute_t": 0.695,
    "test_acc_true_t": 0.666,
    "attack_acc": 0.535,
    "train_acc_true_t": 0.991,
    "train_acc_substitute_t": 0.722,
    "ssim_t_tprime": 0.665,
}

# ----------------------------------------------------------------------
# Table X — Knowledge-4 (inverse MI) accuracy vs alpha.
# ----------------------------------------------------------------------
TABLE10_INVERSE: Dict[str, Dict[float, float]] = {
    "cifar100": {0.1: 0.159, 0.3: 0.328, 0.5: 0.442, 0.7: 0.483, 0.9: 0.489},
    "cifar_aug": {0.1: 0.328, 0.3: 0.394, 0.5: 0.490, 0.7: 0.494, 0.9: 0.498},
    "chmnist": {0.1: 0.414, 0.3: 0.451, 0.5: 0.474, 0.7: 0.491, 0.9: 0.495},
    "purchase50": {0.1: 0.387, 0.3: 0.447, 0.5: 0.482, 0.7: 0.485, 0.9: 0.491},
}

# ----------------------------------------------------------------------
# Table XI — overhead (5 clients). model -> (params_none, params_cip,
# epochs_none, epochs_cip)
# ----------------------------------------------------------------------
TABLE11_OVERHEAD: Dict[str, Tuple[int, int, int, int]] = {
    "resnet": (23_792_612, 23_997_412, 300, 150),
    "densenet": (14_765_988, 14_817_188, 600, 300),
    "vgg": (7_140_004, 7_242_404, 600, 300),
}

# Headline claims (abstract / section V).
HEADLINES = {
    "max_accuracy_drop": 0.007,  # "accuracy to drop at most 0.7%"
    "param_overhead_pct": 0.87,  # Table XI average
    "epochs_reduction_pct": 50.0,  # Table XI
    "deployed_alpha": 0.9,  # RQ3 take-away
}


def table5_sweep(dataset: str) -> Tuple[List[float], List[float]]:
    """(alphas, accuracies) for one dataset's Table-V row (alpha>0 only)."""
    row = TABLE5_ACCURACY[dataset]
    alphas = sorted(a for a in row if a > 0)
    return alphas, [row[a] for a in alphas]


def table6_external_sweep(dataset: str) -> Tuple[List[float], List[float]]:
    """(alphas, external attack accuracies) for one Table-VI row."""
    row = TABLE6_OPT1[dataset]
    alphas = sorted(row)
    return alphas, [row[a][1] for a in alphas]


def table10_sweep(dataset: str) -> Tuple[List[float], List[float]]:
    row = TABLE10_INVERSE[dataset]
    alphas = sorted(row)
    return alphas, [row[a] for a in alphas]
