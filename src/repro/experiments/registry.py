"""Experiment registry: one entry per paper table/figure.

Experiments register themselves with :func:`register`; benches and the
examples look them up with :func:`run_experiment`.  Importing
:mod:`repro.experiments` loads every experiment module, so the registry is
complete after ``import repro.experiments``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.experiments.profiles import Profile, QUICK
from repro.experiments.results import ExperimentResult

ExperimentFn = Callable[[Profile], ExperimentResult]


@dataclass(frozen=True)
class ExperimentSpec:
    """Registered experiment: its id, paper reference, and runner."""

    experiment_id: str
    title: str
    paper_reference: str
    fn: ExperimentFn


_REGISTRY: Dict[str, ExperimentSpec] = {}


def register(
    experiment_id: str, title: str, paper_reference: str
) -> Callable[[ExperimentFn], ExperimentFn]:
    """Decorator registering an experiment runner under ``experiment_id``."""

    def decorate(fn: ExperimentFn) -> ExperimentFn:
        if experiment_id in _REGISTRY:
            raise ValueError(f"duplicate experiment id {experiment_id!r}")
        _REGISTRY[experiment_id] = ExperimentSpec(
            experiment_id=experiment_id,
            title=title,
            paper_reference=paper_reference,
            fn=fn,
        )
        return fn

    return decorate


def list_experiments() -> List[ExperimentSpec]:
    return sorted(_REGISTRY.values(), key=lambda spec: spec.experiment_id)


def get_experiment(experiment_id: str) -> ExperimentSpec:
    if experiment_id not in _REGISTRY:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[experiment_id]


def run_experiment(experiment_id: str, profile: Profile = QUICK) -> ExperimentResult:
    """Run one registered experiment and return its result table."""
    return get_experiment(experiment_id).fn(profile)
