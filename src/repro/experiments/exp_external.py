"""Figure 6: external-adversary comparison of CIP with five defenses.

Single-client CH-MNIST (the paper's well-trained regime): for each defense
and each point of its privacy-budget sweep, report test accuracy and the
Pb-Bayes attack accuracy (the strongest white-box attack).
"""

from __future__ import annotations

from typing import Tuple

from repro.attacks import AttackData, PbBayesAttack, PlainTarget, evaluate_attack
from repro.data.benchmarks import default_training
from repro.defenses import (
    AdversarialRegularizationTrainer,
    DPConfig,
    DPTrainer,
    HDPTrainer,
    MixupMMDTrainer,
    RelaxLossTrainer,
)
from repro.experiments.common import attack_pools, get_bundle, train_cip, train_legacy
from repro.experiments.profiles import Profile
from repro.experiments.registry import register
from repro.experiments.results import ExperimentResult
from repro.fl.training import evaluate_model
from repro.nn.models import build_model
from repro.utils.rng import derive_rng

DATASET = "chmnist"
CIP_ALPHA = 0.9  # paper uses alpha=0.9 for strong external privacy

# Paper Figure 6 budget sweeps (subset selected by the profile's epsilons size).
AR_LAMBDAS = (0.3, 1.0, 2.0)
MM_MUS = (0.5, 2.5, 10.0)
RL_OMEGAS = (0.5, 1.0, 2.5)


def _whitebox_pools(bundle, profile: Profile, seed: int = 0) -> AttackData:
    """Smaller pools for the gradient-heavy Pb-Bayes attack."""
    return attack_pools(bundle, profile, seed=seed, pool=profile.whitebox_pool)


def _attack_accuracy(model, bundle, profile: Profile) -> float:
    target = PlainTarget(model, bundle.num_classes)
    data = _whitebox_pools(bundle, profile)
    return evaluate_attack(PbBayesAttack(), target, data).accuracy


@register("fig6", "External defenses comparison on CH-MNIST", "Figure 6")
def fig6(profile: Profile) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig6",
        title="CIP vs DP/HDP/AR/MM/RL against Pb-Bayes (1 client, CH-MNIST)",
        columns=["defense", "budget", "test_acc", "attack_acc"],
    )
    bundle = get_bundle(DATASET, profile)
    recipe = default_training(DATASET)
    epochs = profile.epochs(recipe.epochs)
    in_channels = bundle.train.inputs.shape[1]
    reference = bundle.test.shuffled(seed=1).take(len(bundle.test) // 2)

    # No defense.
    legacy = train_legacy(DATASET, profile)
    result.add_row(
        defense="none",
        budget=float("nan"),
        test_acc=evaluate_model(legacy.model, bundle.test).accuracy,
        attack_acc=_attack_accuracy(legacy.model, bundle, profile),
    )

    # CIP at the deployed alpha.
    cip = train_cip(DATASET, CIP_ALPHA, profile)
    cip_target = cip.target()  # adversary view: zero-perturbation blend
    data = _whitebox_pools(bundle, profile)
    cip_attack = evaluate_attack(PbBayesAttack(), cip_target, data).accuracy
    result.add_row(
        defense="cip",
        budget=CIP_ALPHA,
        test_acc=cip.trainer.evaluate(bundle.test).accuracy,
        attack_acc=cip_attack,
    )

    # DP and HDP across the epsilon sweep.
    for epsilon in profile.epsilons:
        model = build_model(
            "resnet", bundle.num_classes, in_channels=in_channels, seed=derive_rng(7, "dp", epsilon)
        )
        DPTrainer(model, DPConfig(epsilon=epsilon, lr=recipe.lr), seed=3).train(
            bundle.train, epochs=max(2, epochs // 3), batch_size=recipe.batch_size, seed=2
        )
        result.add_row(
            defense="dp",
            budget=epsilon,
            test_acc=evaluate_model(model, bundle.test).accuracy,
            attack_acc=_attack_accuracy(model, bundle, profile),
        )

        hdp = HDPTrainer(
            bundle.num_classes,
            in_channels,
            DPConfig(epsilon=epsilon, lr=0.1),
            num_filters=32,
            seed=derive_rng(7, "hdp", epsilon),
        )
        hdp.train(bundle.train, epochs=max(2, epochs // 2), batch_size=recipe.batch_size, seed=2)
        result.add_row(
            defense="hdp",
            budget=epsilon,
            test_acc=evaluate_model(hdp.model, bundle.test).accuracy,
            attack_acc=_attack_accuracy(hdp.model, bundle, profile),
        )

    # Adversarial regularization sweep.
    for lam in AR_LAMBDAS[: len(profile.epsilons)]:
        model = build_model(
            "resnet", bundle.num_classes, in_channels=in_channels, seed=derive_rng(7, "ar", lam)
        )
        AdversarialRegularizationTrainer(
            model, bundle.num_classes, reference, lam=lam, lr=recipe.lr, seed=4
        ).train(bundle.train, epochs=epochs, batch_size=recipe.batch_size, seed=2)
        result.add_row(
            defense="ar",
            budget=lam,
            test_acc=evaluate_model(model, bundle.test).accuracy,
            attack_acc=_attack_accuracy(model, bundle, profile),
        )

    # Mixup + MMD sweep.
    for mu in MM_MUS[: len(profile.epsilons)]:
        model = build_model(
            "resnet", bundle.num_classes, in_channels=in_channels, seed=derive_rng(7, "mm", mu)
        )
        MixupMMDTrainer(
            model, bundle.num_classes, reference, mu=mu, lr=recipe.lr, seed=4
        ).train(bundle.train, epochs=epochs, batch_size=recipe.batch_size, seed=2)
        result.add_row(
            defense="mm",
            budget=mu,
            test_acc=evaluate_model(model, bundle.test).accuracy,
            attack_acc=_attack_accuracy(model, bundle, profile),
        )

    # RelaxLoss sweep.
    for omega in RL_OMEGAS[: len(profile.epsilons)]:
        model = build_model(
            "resnet", bundle.num_classes, in_channels=in_channels, seed=derive_rng(7, "rl", omega)
        )
        RelaxLossTrainer(model, bundle.num_classes, omega=omega, lr=recipe.lr, seed=4).train(
            bundle.train, epochs=epochs, batch_size=recipe.batch_size, seed=2
        )
        result.add_row(
            defense="rl",
            budget=omega,
            test_acc=evaluate_model(model, bundle.test).accuracy,
            attack_acc=_attack_accuracy(model, bundle, profile),
        )

    result.add_note("paper: only CIP keeps no-defense accuracy at random-guess attack levels")
    return result
