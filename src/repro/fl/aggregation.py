"""Model aggregation rules.

The paper uses the averaging aggregation of McMahan et al. (FedAvg): the
server replaces the global weights by the sample-size-weighted mean of the
clients' local weights.  Aggregation operates on state dicts so it is
architecture-agnostic; BatchNorm running statistics are averaged the same
way, which is the standard FedAvg-with-BN behaviour.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

StateDict = Dict[str, np.ndarray]


def fedavg(states: Sequence[StateDict], weights: Optional[Sequence[float]] = None) -> StateDict:
    """Weighted average of state dicts.

    ``weights`` default to uniform; they are normalized internally, so
    callers may pass raw sample counts.
    """
    if not states:
        raise ValueError("fedavg needs at least one state dict")
    keys = set(states[0])
    for state in states[1:]:
        if set(state) != keys:
            raise ValueError("state dicts have mismatched keys")
    if weights is None:
        weights_arr = np.full(len(states), 1.0 / len(states))
    else:
        weights_arr = np.asarray(weights, dtype=np.float64)
        if len(weights_arr) != len(states):
            raise ValueError("one weight per state dict required")
        if (weights_arr < 0).any() or weights_arr.sum() <= 0:
            raise ValueError("weights must be non-negative and sum to > 0")
        weights_arr = weights_arr / weights_arr.sum()
    merged: StateDict = {}
    for key in states[0]:
        merged[key] = sum(
            w * state[key] for w, state in zip(weights_arr, states)
        ).astype(np.float64)
    return merged


def state_delta(new: StateDict, old: StateDict) -> StateDict:
    """Per-parameter update ``new - old`` (what a gradient-leakage adversary sees)."""
    if set(new) != set(old):
        raise ValueError("state dicts have mismatched keys")
    return {key: new[key] - old[key] for key in new}


def apply_delta(base: StateDict, delta: StateDict, scale: float = 1.0) -> StateDict:
    """Return ``base + scale * delta``."""
    if set(base) != set(delta):
        raise ValueError("state dicts have mismatched keys")
    return {key: base[key] + scale * delta[key] for key in base}


def flatten_state(state: StateDict) -> np.ndarray:
    """Concatenate all arrays (sorted by key) into one vector.

    Used by parameter-based attacks and by tests asserting aggregation
    linearity.
    """
    return np.concatenate([state[key].reshape(-1) for key in sorted(state)])
