"""A from-scratch NumPy deep-learning substrate.

The paper's implementation targets TensorFlow; no GPU deep-learning framework
is available in this environment, so :mod:`repro.nn` provides the pieces the
reproduction needs: a reverse-mode autograd :class:`Tensor`, layers, losses,
optimizers, and mini versions of the paper's backbone architectures.  See
``DESIGN.md`` section 2 for the substitution rationale.
"""

from repro.nn.backend import (
    ArrayBackend,
    DtypePolicy,
    available_backends,
    available_dtype_policies,
    get_backend,
    get_dtype_policy,
    register_backend,
    set_backend,
    use_backend,
)
from repro.nn.tensor import Tensor, no_grad, concatenate, stack, where
from repro.nn import functional
from repro.nn import diagnostics
from repro.nn.diagnostics import debug_mode, gradcheck, profile_ops
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.losses import (
    cross_entropy,
    l1_norm,
    mse_loss,
    nll_loss,
    per_sample_cross_entropy,
)
from repro.nn.optim import SGD, Adam, Optimizer, StepDecaySchedule
from repro.nn.serialization import (
    clone_state_dict,
    load_state_dict,
    save_state_dict,
    state_dicts_allclose,
)

__all__ = [
    "ArrayBackend",
    "DtypePolicy",
    "available_backends",
    "available_dtype_policies",
    "get_backend",
    "get_dtype_policy",
    "register_backend",
    "set_backend",
    "use_backend",
    "Tensor",
    "no_grad",
    "concatenate",
    "stack",
    "where",
    "functional",
    "diagnostics",
    "debug_mode",
    "gradcheck",
    "profile_ops",
    "Module",
    "Parameter",
    "Linear",
    "Conv2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Flatten",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Dropout",
    "Identity",
    "Sequential",
    "cross_entropy",
    "nll_loss",
    "mse_loss",
    "l1_norm",
    "per_sample_cross_entropy",
    "Optimizer",
    "SGD",
    "Adam",
    "StepDecaySchedule",
    "save_state_dict",
    "load_state_dict",
    "clone_state_dict",
    "state_dicts_allclose",
]
