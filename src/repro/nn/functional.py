"""Differentiable neural-network operations built on :class:`~repro.nn.tensor.Tensor`.

Convolution and pooling are implemented with im2col/col2im so the heavy
lifting happens inside a single BLAS matmul per layer — the only way a NumPy
conv net stays usable on CPU.  All layouts are NCHW.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.tensor import Tensor, is_grad_enabled

#: Op entry points instrumented by :mod:`repro.nn.diagnostics` when op
#: profiling is enabled.  Composite ops (conv2d runs pad/matmul/reshape
#: internally) report *exclusive* time, so their internals are not listed.
PROFILED_OPS = (
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "log_softmax",
    "softmax",
    "dropout",
)


# ----------------------------------------------------------------------
# im2col machinery
# ----------------------------------------------------------------------
def _conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    return (size + 2 * padding - kernel) // stride + 1


def im2col(
    images: np.ndarray, kernel: int, stride: int, padding: int
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Unfold NCHW images into a ``(N*OH*OW, C*KH*KW)`` matrix.

    Returns the matrix and the output spatial size ``(OH, OW)``.
    """
    batch, channels, height, width = images.shape
    out_h = _conv_output_size(height, kernel, stride, padding)
    out_w = _conv_output_size(width, kernel, stride, padding)
    if padding > 0:
        images = np.pad(
            images, ((0, 0), (0, 0), (padding, padding), (padding, padding))
        )
    # Strided sliding-window view: (N, C, OH, OW, KH, KW)
    strides = images.strides
    view = np.lib.stride_tricks.as_strided(
        images,
        shape=(batch, channels, out_h, out_w, kernel, kernel),
        strides=(
            strides[0],
            strides[1],
            strides[2] * stride,
            strides[3] * stride,
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    # -> (N, OH, OW, C, KH, KW) -> (N*OH*OW, C*KH*KW)
    cols = view.transpose(0, 2, 3, 1, 4, 5).reshape(
        batch * out_h * out_w, channels * kernel * kernel
    )
    return np.ascontiguousarray(cols), (out_h, out_w)


def col2im(
    cols: np.ndarray,
    image_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold a ``(N*OH*OW, C*KH*KW)`` matrix back into NCHW images (adjoint of im2col)."""
    batch, channels, height, width = image_shape
    out_h = _conv_output_size(height, kernel, stride, padding)
    out_w = _conv_output_size(width, kernel, stride, padding)
    padded = np.zeros(
        (batch, channels, height + 2 * padding, width + 2 * padding), dtype=cols.dtype
    )
    cols6 = cols.reshape(batch, out_h, out_w, channels, kernel, kernel).transpose(
        0, 3, 1, 2, 4, 5
    )
    for kh in range(kernel):
        h_end = kh + stride * out_h
        for kw in range(kernel):
            w_end = kw + stride * out_w
            padded[:, :, kh:h_end:stride, kw:w_end:stride] += cols6[:, :, :, :, kh, kw]
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


# ----------------------------------------------------------------------
# Convolution
# ----------------------------------------------------------------------
def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D convolution. ``x``: (N,C,H,W); ``weight``: (O,C,K,K); ``bias``: (O,)."""
    out_channels, in_channels, kernel, kernel_w = weight.shape
    if kernel != kernel_w:
        raise ValueError("only square kernels are supported")
    if x.shape[1] != in_channels:
        raise ValueError(
            f"input has {x.shape[1]} channels but weight expects {in_channels}"
        )
    batch = x.shape[0]
    cols, (out_h, out_w) = im2col(x.data, kernel, stride, padding)
    w_mat = weight.data.reshape(out_channels, -1)  # (O, C*K*K)
    out_mat = cols @ w_mat.T  # (N*OH*OW, O)
    if bias is not None:
        out_mat = out_mat + bias.data
    out_data = out_mat.reshape(batch, out_h, out_w, out_channels).transpose(0, 3, 1, 2)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray) -> None:
        grad_mat = grad.transpose(0, 2, 3, 1).reshape(-1, out_channels)
        if weight.requires_grad:
            weight._accumulate((grad_mat.T @ cols).reshape(weight.shape))
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad_mat.sum(axis=0))
        if x.requires_grad:
            grad_cols = grad_mat @ w_mat  # (N*OH*OW, C*K*K)
            x._accumulate(col2im(grad_cols, x.shape, kernel, stride, padding))

    return x._make(out_data, parents, backward, "conv2d")


# ----------------------------------------------------------------------
# Pooling
# ----------------------------------------------------------------------
def max_pool2d(x: Tensor, kernel: int, stride: Optional[int] = None) -> Tensor:
    """Max pooling with square windows (no padding)."""
    stride = stride or kernel
    batch, channels, height, width = x.shape
    out_h = _conv_output_size(height, kernel, stride, 0)
    out_w = _conv_output_size(width, kernel, stride, 0)
    strides = x.data.strides
    view = np.lib.stride_tricks.as_strided(
        x.data,
        shape=(batch, channels, out_h, out_w, kernel, kernel),
        strides=(
            strides[0],
            strides[1],
            strides[2] * stride,
            strides[3] * stride,
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    windows = view.reshape(batch, channels, out_h, out_w, kernel * kernel)
    arg = windows.argmax(axis=-1)
    out_data = np.take_along_axis(windows, arg[..., None], axis=-1)[..., 0]

    def backward(grad: np.ndarray) -> None:
        # Allocate in the input's dtype so a float32 compute path is not
        # silently upcast to float64 by its pooling gradients.
        grad_windows = np.zeros(
            (batch, channels, out_h, out_w, kernel * kernel), dtype=x.data.dtype
        )
        np.put_along_axis(grad_windows, arg[..., None], grad[..., None], axis=-1)
        grad_windows = grad_windows.reshape(batch, channels, out_h, out_w, kernel, kernel)
        full = np.zeros(x.shape, dtype=x.data.dtype)
        for kh in range(kernel):
            for kw in range(kernel):
                full[:, :, kh : kh + stride * out_h : stride, kw : kw + stride * out_w : stride] += grad_windows[
                    :, :, :, :, kh, kw
                ]
        x._accumulate(full)

    return x._make(out_data, (x,), backward, "max_pool2d")


def avg_pool2d(x: Tensor, kernel: int, stride: Optional[int] = None) -> Tensor:
    """Average pooling with square windows (no padding)."""
    stride = stride or kernel
    batch, channels, height, width = x.shape
    out_h = _conv_output_size(height, kernel, stride, 0)
    out_w = _conv_output_size(width, kernel, stride, 0)
    strides = x.data.strides
    view = np.lib.stride_tricks.as_strided(
        x.data,
        shape=(batch, channels, out_h, out_w, kernel, kernel),
        strides=(
            strides[0],
            strides[1],
            strides[2] * stride,
            strides[3] * stride,
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    out_data = view.mean(axis=(4, 5))
    scale = 1.0 / (kernel * kernel)

    def backward(grad: np.ndarray) -> None:
        full = np.zeros(x.shape, dtype=x.data.dtype)
        scaled = grad * scale
        for kh in range(kernel):
            for kw in range(kernel):
                full[:, :, kh : kh + stride * out_h : stride, kw : kw + stride * out_w : stride] += scaled
        x._accumulate(full)

    return x._make(out_data, (x,), backward, "avg_pool2d")


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Global average pooling: (N,C,H,W) -> (N,C)."""
    return x.mean(axis=(2, 3))


# ----------------------------------------------------------------------
# Softmax / log-softmax / one-hot
# ----------------------------------------------------------------------
def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax with a fused backward pass."""
    shifted = logits.data - logits.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_z
    softmax_data = np.exp(out_data)

    def backward(grad: np.ndarray) -> None:
        logits._accumulate(grad - softmax_data * grad.sum(axis=axis, keepdims=True))

    return logits._make(out_data, (logits,), backward, "log_softmax")


def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax with a fused backward pass."""
    shifted = logits.data - logits.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        inner = (grad * out_data).sum(axis=axis, keepdims=True)
        logits._accumulate(out_data * (grad - inner))

    return logits._make(out_data, (logits,), backward, "softmax")


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Plain (non-differentiable) one-hot encoding of an int label vector."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.min(initial=0) < 0 or (labels.size and labels.max() >= num_classes):
        raise ValueError("labels out of range for one_hot")
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def dropout(x: Tensor, rate: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: scales at train time so inference is identity."""
    if not training or rate <= 0.0:
        return x
    if not 0.0 <= rate < 1.0:
        raise ValueError("dropout rate must be in [0, 1)")
    keep = 1.0 - rate
    # Mask in the input's dtype: a float64 mask would upcast float32 data.
    mask = ((rng.random(x.shape) < keep) / keep).astype(x.data.dtype, copy=False)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * mask)

    return x._make(x.data * mask, (x,), backward, "dropout")


# Wrap the profiled entry points once, at module-definition time, so every
# importer — including `from repro.nn.functional import log_softmax`-style
# by-value imports (losses, defenses) — gets the instrumented callable.
# The wrapper is a no-op passthrough while op profiling is disabled.
from repro.nn import diagnostics as _diagnostics  # noqa: E402  (needs the ops above)

for _name in PROFILED_OPS:
    globals()[_name] = _diagnostics.timed_op(_name, globals()[_name])
del _name
