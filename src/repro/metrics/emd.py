"""Earth-Mover Distance utilities (paper Figure 7).

The paper quantifies inter-client heterogeneity by the EMD between clients'
training-loss distributions recorded over all rounds.  For 1-D empirical
distributions the EMD (1-Wasserstein distance) is the integral of the
absolute difference of the CDFs, computed exactly from sorted samples.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def emd_1d(samples_a: np.ndarray, samples_b: np.ndarray) -> float:
    """Exact 1-Wasserstein distance between two empirical distributions."""
    a = np.sort(np.asarray(samples_a, dtype=np.float64))
    b = np.sort(np.asarray(samples_b, dtype=np.float64))
    if len(a) == 0 or len(b) == 0:
        raise ValueError("both sample sets must be non-empty")
    if len(a) == len(b):
        return float(np.abs(a - b).mean())
    # General case: integrate |F_a - F_b| over the merged support.
    support = np.concatenate([a, b])
    support.sort(kind="mergesort")
    deltas = np.diff(support)
    cdf_a = np.searchsorted(a, support[:-1], side="right") / len(a)
    cdf_b = np.searchsorted(b, support[:-1], side="right") / len(b)
    return float(np.sum(np.abs(cdf_a - cdf_b) * deltas))


def pairwise_mean_emd(series: Sequence[np.ndarray]) -> float:
    """Average EMD over all pairs of clients' loss trajectories.

    This is the Figure-7 statistic: each element of ``series`` is one
    client's per-round training losses; the result is the mean EMD over all
    client pairs.
    """
    series = [np.asarray(s, dtype=np.float64) for s in series]
    if len(series) < 2:
        return 0.0
    total = 0.0
    pairs = 0
    for i in range(len(series)):
        for j in range(i + 1, len(series)):
            total += emd_1d(series[i], series[j])
            pairs += 1
    return total / pairs
