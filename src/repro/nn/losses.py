"""Loss functions.

Cross-entropy is the loss used throughout the paper — both in the standard FL
training and in both CIP objectives (Eq. 3 and Eq. 4).  ``cross_entropy``
fuses log-softmax and NLL and exposes a per-sample variant because MI attacks
(Ob-Label, Ob-MALT, inverse-MI) all threshold *per-sample* losses.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.nn.backend import get_dtype_policy
from repro.nn.functional import log_softmax, one_hot
from repro.nn.tensor import Tensor


def cross_entropy(
    logits: Tensor,
    labels: np.ndarray,
    reduction: str = "mean",
    weights: Optional[np.ndarray] = None,
) -> Tensor:
    """Softmax cross-entropy from raw logits.

    Parameters
    ----------
    logits:
        (N, C) unnormalized scores.
    labels:
        (N,) integer class labels.
    reduction:
        ``"mean"``, ``"sum"`` or ``"none"`` (per-sample losses).
    weights:
        Optional (N,) per-sample weights applied before reduction.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError("cross_entropy expects (N, C) logits")
    if labels.shape[0] != logits.shape[0]:
        raise ValueError("labels and logits batch sizes differ")
    log_probs = log_softmax(logits, axis=-1)
    hot = one_hot(labels, logits.shape[1], dtype=log_probs.data.dtype)
    per_sample = -(log_probs * hot).sum(axis=1)
    if weights is not None:
        per_sample = per_sample * np.asarray(weights, dtype=per_sample.data.dtype)
    return _reduce(per_sample, reduction)


def nll_loss(log_probs: Tensor, labels: np.ndarray, reduction: str = "mean") -> Tensor:
    """Negative log-likelihood from log-probabilities."""
    labels = np.asarray(labels, dtype=np.int64)
    hot = one_hot(labels, log_probs.shape[1], dtype=log_probs.data.dtype)
    per_sample = -(log_probs * hot).sum(axis=1)
    return _reduce(per_sample, reduction)


def mse_loss(
    predictions: Tensor, targets: Union[Tensor, np.ndarray], reduction: str = "mean"
) -> Tensor:
    """Mean squared error (used by the toy linear-regression motivation)."""
    targets = targets if isinstance(targets, Tensor) else Tensor(targets)
    diff = predictions - targets
    per_element = diff * diff
    return _reduce(per_element, reduction)


def l1_norm(tensor: Tensor) -> Tensor:
    """L1 magnitude ``|t|_1`` — the perturbation regularizer of Eq. (3)."""
    return tensor.abs().sum()


def _reduce(values: Tensor, reduction: str) -> Tensor:
    if reduction == "none":
        return values
    policy = get_dtype_policy()
    if policy.upcast_loss and values.data.dtype != policy.loss_dtype:
        # Float32 compute path: accumulate the scalar loss in float64 so the
        # reduction over a batch does not lose low-order bits.  The cast op's
        # backward returns the gradient to float32 before it reaches the graph.
        values = values.astype(policy.loss_dtype)
    if reduction == "mean":
        return values.mean()
    if reduction == "sum":
        return values.sum()
    raise ValueError(f"unknown reduction {reduction!r}")


def per_sample_cross_entropy(logits_data: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Non-differentiable per-sample cross-entropy on raw arrays.

    Used inside attacks (which never need gradients of the loss wrt inputs)
    to avoid building autograd graphs on large attack datasets.
    """
    labels = np.asarray(labels, dtype=np.int64)
    shifted = logits_data - logits_data.max(axis=1, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    log_probs = shifted - log_z
    return -log_probs[np.arange(labels.shape[0]), labels]
