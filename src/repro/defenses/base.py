"""Common surface for baseline defense trainers.

Every baseline defense in the paper's comparison (DP, HDP, AR, MM, RL)
exposes the same shape: construct with a model + privacy knob, ``train`` on
a dataset, then hand the model to the attack suite via
:class:`repro.attacks.PlainTarget`.
"""

from __future__ import annotations

from typing import Protocol

from repro.data.dataset import Dataset
from repro.fl.training import EvalResult, evaluate_model
from repro.nn.layers import Module


class DefenseTrainer(Protocol):
    """Structural type implemented by all baseline defense trainers."""

    model: Module

    def train(self, dataset: Dataset, epochs: int, batch_size: int = 32, seed=None) -> None:
        ...


def evaluate_defense(trainer: "DefenseTrainer", dataset: Dataset) -> EvalResult:
    """Accuracy of a defense-trained model (plain single-channel queries)."""
    return evaluate_model(trainer.model, dataset)
