"""Step I: the perturbation and its optimizer (Eq. 3)."""

import numpy as np
import pytest

from repro.core.config import CIPConfig
from repro.core.perturbation import Perturbation, optimize_perturbation_for_model
from repro.nn.models import build_model
from repro.nn.serialization import state_dicts_allclose


def dual_factory():
    return build_model("mlp", 4, in_features=64, hidden=(32,), dual_channel=True, seed=0)


@pytest.fixture
def flat_images(tiny_image_dataset):
    """Flatten the image fixture for the MLP dual-channel model."""
    from repro.data.dataset import Dataset

    flat = tiny_image_dataset.inputs.reshape(len(tiny_image_dataset), -1)
    return Dataset(flat, tiny_image_dataset.labels, tiny_image_dataset.num_classes)


class TestPerturbation:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            CIPConfig(alpha=1.5)
        with pytest.raises(ValueError):
            CIPConfig(lambda_t=-1.0)
        with pytest.raises(ValueError):
            CIPConfig(perturbation_lr=0.0)

    def test_random_init_in_clip_range(self):
        p = Perturbation((8,), CIPConfig(), seed=0)
        assert p.value.min() >= 0.0 and p.value.max() <= 1.0
        assert p.shape == (8,)

    def test_explicit_init(self):
        init = np.full((8,), 0.25)
        p = Perturbation((8,), CIPConfig(), initial=init)
        np.testing.assert_allclose(p.value, init)

    def test_explicit_init_shape_checked(self):
        with pytest.raises(ValueError):
            Perturbation((8,), CIPConfig(), initial=np.zeros(9))

    def test_value_is_a_copy(self):
        p = Perturbation((4,), CIPConfig(), seed=0)
        p.value[:] = 77.0
        assert not np.allclose(p.value, 77.0)

    def test_seeded_init_deterministic(self):
        a = Perturbation((6,), CIPConfig(), seed=5)
        b = Perturbation((6,), CIPConfig(), seed=5)
        np.testing.assert_array_equal(a.value, b.value)

    def test_step_reduces_objective(self, flat_images):
        model = dual_factory()
        config = CIPConfig(alpha=0.5, perturbation_lr=0.1)
        p = Perturbation((64,), config, seed=0)
        inputs, labels = flat_images.inputs[:16], flat_images.labels[:16]
        first = p.step(model, inputs, labels)
        for _ in range(15):
            last = p.step(model, inputs, labels)
        assert last < first

    def test_step_moves_t_not_model(self, flat_images):
        model = dual_factory()
        before = model.state_dict()
        p = Perturbation((64,), CIPConfig(alpha=0.5, perturbation_lr=0.1), seed=0)
        t_before = p.value
        p.step(model, flat_images.inputs[:8], flat_images.labels[:8])
        assert state_dicts_allclose(model.state_dict(), before)
        assert not np.allclose(p.value, t_before)

    def test_step_leaves_model_grads_clean(self, flat_images):
        model = dual_factory()
        p = Perturbation((64,), CIPConfig(alpha=0.5), seed=0)
        p.step(model, flat_images.inputs[:8], flat_images.labels[:8])
        assert all(param.grad is None for param in model.parameters())
        assert model.training  # restored to train mode

    def test_optimize_runs_configured_steps(self, flat_images):
        model = dual_factory()
        config = CIPConfig(alpha=0.5, perturbation_steps=3)
        p = Perturbation((64,), config, seed=0)
        t0 = p.value
        p.optimize(model, flat_images.inputs[:8], flat_images.labels[:8])
        assert not np.allclose(p.value, t0)

    def test_zero_steps_is_noop(self, flat_images):
        model = dual_factory()
        p = Perturbation((64,), CIPConfig(alpha=0.5, perturbation_steps=0), seed=0)
        t0 = p.value
        result = p.optimize(model, flat_images.inputs[:8], flat_images.labels[:8])
        np.testing.assert_array_equal(p.value, t0)
        assert np.isnan(result)

    def test_l1_regularizer_shrinks_t(self, flat_images):
        """With a huge lambda_t the L1 term dominates and |t| decreases."""
        model = dual_factory()
        config = CIPConfig(alpha=0.5, lambda_t=10.0, perturbation_lr=0.01)
        p = Perturbation((64,), config, seed=0)
        before = np.abs(p.value).sum()
        for _ in range(10):
            p.step(model, flat_images.inputs[:8], flat_images.labels[:8])
        assert np.abs(p.value).sum() < before


class TestOptimizeForFixedModel:
    def test_returns_fitted_perturbation(self, flat_images):
        model = dual_factory()
        config = CIPConfig(alpha=0.5, perturbation_lr=0.05)
        p = optimize_perturbation_for_model(
            model, flat_images.inputs, flat_images.labels, config, steps=5, seed=0
        )
        assert p.shape == (64,)

    def test_initial_seed_respected(self, flat_images):
        model = dual_factory()
        config = CIPConfig(alpha=0.5, perturbation_lr=1e-6)  # tiny steps
        init = np.full((64,), 0.5)
        p = optimize_perturbation_for_model(
            model, flat_images.inputs, flat_images.labels, config, steps=2, seed=0, initial=init
        )
        np.testing.assert_allclose(p.value, init, atol=1e-3)
