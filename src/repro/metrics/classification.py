"""Binary-attack classification metrics (Table IV columns)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BinaryMetrics:
    """Precision / recall / F1 / accuracy of a membership predictor."""

    precision: float
    recall: float
    f1: float
    accuracy: float
    true_positives: int
    false_positives: int
    true_negatives: int
    false_negatives: int

    def as_row(self) -> dict:
        return {
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "accuracy": self.accuracy,
        }


def binary_metrics(predictions: np.ndarray, labels: np.ndarray) -> BinaryMetrics:
    """Compute attack metrics; ``labels`` use 1 = member, 0 = non-member."""
    predictions = np.asarray(predictions).astype(bool)
    labels = np.asarray(labels).astype(bool)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must align")
    tp = int(np.sum(predictions & labels))
    fp = int(np.sum(predictions & ~labels))
    tn = int(np.sum(~predictions & ~labels))
    fn = int(np.sum(~predictions & labels))
    precision = tp / (tp + fp) if (tp + fp) else 0.0
    recall = tp / (tp + fn) if (tp + fn) else 0.0
    f1 = 2 * precision * recall / (precision + recall) if (precision + recall) else 0.0
    total = tp + fp + tn + fn
    accuracy = (tp + tn) / total if total else 0.0
    return BinaryMetrics(
        precision=precision,
        recall=recall,
        f1=f1,
        accuracy=accuracy,
        true_positives=tp,
        false_positives=fp,
        true_negatives=tn,
        false_negatives=fn,
    )


def roc_auc(scores: np.ndarray, labels: np.ndarray) -> float:
    """Area under the ROC curve via the rank statistic (ties handled)."""
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels).astype(bool)
    positives = scores[labels]
    negatives = scores[~labels]
    if len(positives) == 0 or len(negatives) == 0:
        return 0.5
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(len(scores), dtype=np.float64)
    ranks[order] = np.arange(1, len(scores) + 1)
    # Average ranks over ties.
    sorted_scores = scores[order]
    i = 0
    while i < len(sorted_scores):
        j = i
        while j + 1 < len(sorted_scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        if j > i:
            ranks[order[i : j + 1]] = (i + 1 + j + 1) / 2.0
        i = j + 1
    rank_sum = ranks[labels].sum()
    n_pos, n_neg = len(positives), len(negatives)
    return float((rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg))


def best_threshold_accuracy(scores: np.ndarray, labels: np.ndarray) -> float:
    """Best achievable accuracy of ``score >= threshold`` over all thresholds.

    MI papers commonly report the oracle-threshold attack accuracy; this is
    the balanced "strongest thresholding adversary" number.
    """
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels).astype(bool)
    candidates = np.unique(scores)
    best = max(labels.mean(), 1 - labels.mean())  # trivial all-one/all-zero
    for threshold in candidates:
        accuracy = ((scores >= threshold) == labels).mean()
        best = max(best, float(accuracy))
    return float(best)
