"""Utility modules: RNG derivation, logging, timer."""

import logging

import numpy as np
import pytest

from repro.utils.logging import enable_console_logging, get_logger
from repro.utils.rng import as_generator, derive_rng, spawn_rngs
from repro.utils.timer import Timer


class TestRng:
    def test_derive_is_stateless_and_deterministic(self):
        a = derive_rng(42, "clients", 3).random(5)
        b = derive_rng(42, "clients", 3).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_keys_differ(self):
        a = derive_rng(42, "clients", 3).random(5)
        b = derive_rng(42, "clients", 4).random(5)
        c = derive_rng(42, "servers", 3).random(5)
        assert not np.allclose(a, b)
        assert not np.allclose(a, c)

    def test_string_keys_stable(self):
        # FNV-1a hashing: independent of PYTHONHASHSEED
        a = derive_rng(0, "alpha").random(3)
        b = derive_rng(0, "alpha").random(3)
        np.testing.assert_array_equal(a, b)

    def test_spawn_rngs_independent(self):
        rngs = spawn_rngs(7, 3, "workers")
        draws = [rng.random(4) for rng in rngs]
        assert not np.allclose(draws[0], draws[1])
        again = spawn_rngs(7, 3, "workers")
        np.testing.assert_array_equal(draws[0], again[0].random(4))

    def test_as_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen
        assert isinstance(as_generator(5), np.random.Generator)
        assert isinstance(as_generator(None), np.random.Generator)


class TestLogging:
    def test_namespacing(self):
        assert get_logger("fl.server").name == "repro.fl.server"
        assert get_logger("repro.core").name == "repro.core"

    def test_console_logging_idempotent(self):
        enable_console_logging(logging.WARNING)
        enable_console_logging(logging.WARNING)
        root = logging.getLogger("repro")
        console = [h for h in root.handlers if getattr(h, "_repro_console", False)]
        assert len(console) == 1


class TestTimer:
    def test_sections_accumulate(self):
        timer = Timer()
        with timer.section("work"):
            pass
        with timer.section("work"):
            pass
        assert timer.count("work") == 2
        assert timer.total("work") >= 0.0
        assert timer.mean("work") == pytest.approx(timer.total("work") / 2)

    def test_unknown_section(self):
        timer = Timer()
        assert timer.total("nope") == 0.0
        assert timer.mean("nope") == 0.0

    def test_summary(self):
        timer = Timer()
        with timer.section("a"):
            pass
        assert "a" in timer.summary()
