"""LayerNorm, multi-head attention, transformer blocks, mini ViT."""

import numpy as np
import pytest

from repro.nn.attention import LayerNorm, MultiHeadSelfAttention, TransformerBlock
from repro.nn.losses import cross_entropy
from repro.nn.models import MiniViTBackbone, PatchEmbedding, build_model
from repro.nn.optim import SGD
from repro.nn.tensor import Tensor
from tests.conftest import check_gradient


class TestLayerNorm:
    def test_normalizes_last_axis(self):
        rng = np.random.default_rng(0)
        x = rng.normal(3.0, 5.0, size=(4, 6, 8))
        out = LayerNorm(8)(Tensor(x))
        np.testing.assert_allclose(out.data.mean(axis=-1), np.zeros((4, 6)), atol=1e-7)
        np.testing.assert_allclose(out.data.std(axis=-1), np.ones((4, 6)), atol=1e-3)

    def test_affine_parameters(self):
        ln = LayerNorm(4)
        ln.weight.data = np.full(4, 2.0)
        ln.bias.data = np.full(4, 1.0)
        out = ln(Tensor(np.random.default_rng(1).normal(size=(3, 4))))
        np.testing.assert_allclose(out.data.mean(axis=-1), np.ones(3), atol=1e-6)

    def test_dim_validation(self):
        with pytest.raises(ValueError):
            LayerNorm(4)(Tensor(np.zeros((2, 5))))

    def test_gradient(self):
        ln = LayerNorm(5)
        check_gradient(lambda x: (ln(x) ** 2).sum(), (3, 5), atol=1e-4)


class TestAttention:
    def test_output_shape(self):
        attn = MultiHeadSelfAttention(dim=16, num_heads=4, seed=0)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 9, 16)))
        assert attn(x).shape == (2, 9, 16)

    def test_head_divisibility(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(dim=10, num_heads=3)

    def test_permutation_equivariance(self):
        """Self-attention without positions commutes with token permutation."""
        attn = MultiHeadSelfAttention(dim=8, num_heads=2, seed=0)
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 5, 8))
        perm = rng.permutation(5)
        out = attn(Tensor(x)).data
        out_perm = attn(Tensor(x[:, perm])).data
        np.testing.assert_allclose(out[:, perm], out_perm, atol=1e-10)

    def test_gradients_flow(self):
        attn = MultiHeadSelfAttention(dim=8, num_heads=2, seed=0)
        x = Tensor(np.random.default_rng(2).normal(size=(2, 4, 8)), requires_grad=True)
        attn(x).sum().backward()
        assert x.grad is not None
        assert all(p.grad is not None for p in attn.parameters())


class TestTransformerBlock:
    def test_residual_structure(self):
        block = TransformerBlock(dim=8, num_heads=2, seed=0)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 4, 8)))
        out = block(x)
        assert out.shape == x.shape
        # residuals: output correlates with input
        corr = np.corrcoef(out.data.ravel(), x.data.ravel())[0, 1]
        assert corr > 0.3


class TestPatchEmbedding:
    def test_patch_count_and_shape(self):
        embed = PatchEmbedding(in_channels=3, image_size=12, patch_size=4, dim=16, seed=0)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 3, 12, 12)))
        out = embed(x)
        assert out.shape == (2, 9, 16)

    def test_divisibility_validation(self):
        with pytest.raises(ValueError):
            PatchEmbedding(3, image_size=12, patch_size=5, dim=16)

    def test_patches_are_local(self):
        """Changing one patch of the image changes only that token."""
        embed = PatchEmbedding(in_channels=1, image_size=8, patch_size=4, dim=8, seed=0)
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 1, 8, 8))
        base = embed(Tensor(x)).data
        x2 = x.copy()
        x2[0, 0, :4, :4] += 1.0  # patch (0, 0) -> token 0
        changed = embed(Tensor(x2)).data
        diff = np.abs(changed - base).sum(axis=2)[0]
        assert diff[0] > 1e-6
        np.testing.assert_allclose(diff[1:], 0.0, atol=1e-12)


class TestMiniViT:
    def test_feature_shape_gap_compatible(self):
        backbone = MiniViTBackbone(in_channels=3, image_size=12, patch_size=4, dim=16, seed=0)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 3, 12, 12)))
        out = backbone(x)
        assert out.shape == (2, 16, 1, 1)

    def test_in_factory_and_dual_channel(self):
        model = build_model("vit", 5, in_channels=3, dual_channel=True, seed=0)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 3, 12, 12)))
        assert model((x, x)).shape == (2, 5)

    def test_learns_a_separable_task(self):
        rng = np.random.default_rng(3)
        # two classes: bright top half vs bright bottom half
        x = np.zeros((32, 1, 12, 12))
        y = np.repeat([0, 1], 16)
        x[:16, :, :6, :] = 1.0
        x[16:, :, 6:, :] = 1.0
        x += rng.normal(0, 0.1, x.shape)
        model = build_model("vit", 2, in_channels=1, seed=0)
        opt = SGD(model.parameters(), lr=0.1, momentum=0.9)
        for _ in range(30):
            opt.zero_grad()
            loss = cross_entropy(model(Tensor(x)), y)
            loss.backward()
            opt.step()
        assert (model(Tensor(x)).argmax(axis=1) == y).mean() > 0.9
