"""Theoretical analysis of CIP (paper Section III-C).

Implements the quantities of Theorem 1 so they can be checked numerically on
trained models:

* the membership posterior under the Sablayrolles model-posterior assumption
  ``Pr(theta | D) ∝ exp(-L/T)`` — loss-based, with temperature ``T``;
* the *adversarial advantage* ``Adv = Pr(m=1|theta,z) / Pr(m=0|theta,z)``;
* the Theorem-1 ratio ``eps = exp(-(l(z_t') - l(z_t)) / T)`` bounding the
  advantage of an attacker guessing a wrong perturbation ``t'``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def membership_posterior(
    loss: np.ndarray, reference_loss: float, temperature: float = 1.0, prior: float = 0.5
) -> np.ndarray:
    """``Pr(m = 1 | theta, z)`` under the loss-based posterior model.

    With ``Pr(theta | m=1, z) ∝ exp(-l/T)`` and a member prior ``eta``, Bayes
    gives ``Pr(m=1|theta,z) = eta e^{-l/T} / (eta e^{-l/T} + (1-eta) e^{-r/T})``
    where ``r`` is the non-member reference loss level.  This is the Bayes-
    optimal (Ob-MALT-style) membership score.
    """
    if temperature <= 0:
        raise ValueError("temperature must be positive")
    if not 0.0 < prior < 1.0:
        raise ValueError("prior must be in (0, 1)")
    loss = np.asarray(loss, dtype=np.float64)
    member_weight = prior * np.exp(-(loss - reference_loss) / temperature)
    return member_weight / (member_weight + (1.0 - prior))


def adversarial_advantage(
    loss: np.ndarray, reference_loss: float, temperature: float = 1.0, prior: float = 0.5
) -> np.ndarray:
    """``Adv(theta, z) = Pr(m=1|theta,z) / Pr(m=0|theta,z)`` (Eq. 5)."""
    posterior = membership_posterior(loss, reference_loss, temperature, prior)
    return posterior / np.clip(1.0 - posterior, 1e-300, None)


def theorem1_epsilon(
    loss_true_t: np.ndarray, loss_guessed_t: np.ndarray, temperature: float = 1.0
) -> np.ndarray:
    """The Theorem-1 ratio ``eps = exp(-(l(z_t') - l(z_t)) / T)``.

    Under the theorem's assumption ``l(z_t) <= l(z_t')`` (the true ``t`` is
    the one minimized during training), ``eps <= 1``: guessing a wrong
    perturbation can only *shrink* the adversary's advantage.
    """
    if temperature <= 0:
        raise ValueError("temperature must be positive")
    gap = np.asarray(loss_guessed_t, dtype=np.float64) - np.asarray(
        loss_true_t, dtype=np.float64
    )
    return np.exp(-gap / temperature)


@dataclass
class Theorem1Check:
    """Numeric verification of Theorem 1 on a trained model."""

    mean_loss_true_t: float
    mean_loss_guessed_t: float
    mean_epsilon: float
    fraction_bounded: float  # fraction of samples with eps <= 1
    assumption_holds: bool  # mean loss under true t <= under guessed t

    @property
    def bound_holds_on_average(self) -> bool:
        return self.mean_epsilon <= 1.0 + 1e-9


def check_theorem1(
    loss_true_t: np.ndarray, loss_guessed_t: np.ndarray, temperature: float = 1.0
) -> Theorem1Check:
    """Evaluate the Theorem-1 bound on per-sample losses from a real model.

    ``loss_true_t`` are losses of training samples blended with the true
    perturbation; ``loss_guessed_t`` the same samples blended with an
    attacker's guess.
    """
    loss_true_t = np.asarray(loss_true_t, dtype=np.float64)
    loss_guessed_t = np.asarray(loss_guessed_t, dtype=np.float64)
    eps = theorem1_epsilon(loss_true_t, loss_guessed_t, temperature)
    return Theorem1Check(
        mean_loss_true_t=float(loss_true_t.mean()),
        mean_loss_guessed_t=float(loss_guessed_t.mean()),
        mean_epsilon=float(eps.mean()),
        fraction_bounded=float((eps <= 1.0 + 1e-12).mean()),
        assumption_holds=bool(loss_true_t.mean() <= loss_guessed_t.mean()),
    )
