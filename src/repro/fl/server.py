"""The FL parameter server.

Holds the canonical global model, aggregates client updates (FedAvg by
default, or one of the robust rules in :mod:`repro.fl.aggregation`), and
exposes a ``broadcast_hook`` so the malicious-server attacks of Nasr et al.
(see :mod:`repro.fl.malicious`) can tamper with what a victim client receives
without changing the honest code path.

Against *malicious clients* the server has two optional defenses that
compose:

* **update screening** (:mod:`repro.fl.robust`) — every incoming state dict
  is validated against the round's broadcast state before aggregation;
  quarantined clients count against the ``min_participation`` quorum and
  the report lands in :attr:`FLServer.last_screening` for telemetry;
* **robust aggregation** — the ``aggregator`` knob swaps FedAvg for
  coordinate-wise median, trimmed mean, norm-clipped FedAvg, or
  Krum/Multi-Krum, bounding a Byzantine minority's influence even when it
  slips past screening.
"""

from __future__ import annotations

import inspect
import logging
import math
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.config import ScreeningConfig
from repro.fl.aggregation import Aggregator, ShardAggregator, make_aggregator
from repro.fl.client import ClientUpdate, ModelFactory
from repro.fl.robust import ScreeningReport, screen_updates
from repro.nn.layers import Module
from repro.nn.serialization import clone_state_dict

StateDict = Dict[str, np.ndarray]
BroadcastHook = Callable[[int, int, StateDict], StateDict]

_log = logging.getLogger(__name__)


def _flatten_state(state: StateDict) -> np.ndarray:
    return np.concatenate(
        [np.asarray(value, dtype=np.float64).ravel() for value in state.values()]
    )


def _accepts_staleness(aggregator: Callable[..., StateDict]) -> bool:
    """True when ``aggregator`` can take a ``staleness=`` keyword.

    Registry-built aggregators all accept it; user-supplied callables may
    predate the knob, so the server only forwards staleness weights when the
    signature says they are understood.
    """
    try:
        parameters = inspect.signature(aggregator).parameters
    except (TypeError, ValueError):
        return False
    if "staleness" in parameters:
        return True
    return any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in parameters.values()
    )


class FLServer:
    """Parameter server with pluggable (optionally Byzantine-robust)
    aggregation and optional update screening.

    ``aggregator`` is a name from :data:`repro.core.config.AGGREGATORS`
    (options via ``aggregator_options``, see
    :func:`repro.fl.aggregation.make_aggregator`) or an already-bound
    callable ``(states, weights=None, reference=None) -> StateDict``.
    ``screening=None`` (default) trusts every update, preserving the paper's
    behaviour.
    """

    def __init__(
        self,
        model_factory: ModelFactory,
        aggregator: Union[str, Aggregator] = "fedavg",
        aggregator_options: Optional[Dict[str, object]] = None,
        screening: Optional[ScreeningConfig] = None,
        gate_aggregate: bool = False,
        gate_norm_multiplier: float = 10.0,
    ) -> None:
        if gate_norm_multiplier <= 0:
            raise ValueError("gate_norm_multiplier must be positive")
        self.model: Module = model_factory()
        self._round = 0
        self.broadcast_hook: Optional[BroadcastHook] = None
        self.screening = screening
        #: Screening outcome of the most recent :meth:`aggregate` call
        #: (``None`` when screening is disabled); consumed by the
        #: simulation's round telemetry.
        self.last_screening: Optional[ScreeningReport] = None
        self.gate_aggregate = gate_aggregate
        self.gate_norm_multiplier = float(gate_norm_multiplier)
        #: Clients dropped by the aggregate sanity gate in the most recent
        #: :meth:`aggregate` call (client id -> reason); consumed by the
        #: simulation's round telemetry alongside screening quarantines.
        self.last_gate: Dict[int, str] = {}
        self.set_aggregator(aggregator, **(aggregator_options or {}))

    def set_aggregator(
        self, aggregator: Union[str, Aggregator], **options: object
    ) -> None:
        """Swap the aggregation rule (by registry name or bound callable).

        Registry names accept two topology options on top of the rule's own
        knobs: ``shards`` (> 1 routes the rule through a hierarchical
        :class:`~repro.fl.aggregation.ShardAggregator` tree) and
        ``region_fanout`` (optional region tier between the edge shards and
        the root).  Sharded FedAvg stays bit-identical to flat FedAvg; the
        robust rules apply shard-locally (see :class:`ShardAggregator`).
        """
        if callable(aggregator):
            if options:
                raise ValueError("options only apply to aggregator names")
            self.aggregator_name = getattr(aggregator, "__name__", "custom")
            self._aggregate = aggregator
        else:
            shards = int(options.pop("shards", 1) or 1)
            region_fanout = options.pop("region_fanout", None)
            if shards > 1:
                sharded = ShardAggregator(
                    rule=aggregator,
                    shards=shards,
                    region_fanout=region_fanout,
                    **options,
                )
                self.aggregator_name = sharded.__name__
                self._aggregate = sharded
            else:
                if region_fanout is not None:
                    raise ValueError("region_fanout requires shards > 1")
                self.aggregator_name = aggregator
                self._aggregate = make_aggregator(aggregator, **options)
        self._aggregate_accepts_staleness = _accepts_staleness(self._aggregate)

    @property
    def round(self) -> int:
        return self._round

    def global_state(self) -> StateDict:
        return clone_state_dict(self.model.state_dict())

    def broadcast(self, client_id: int) -> StateDict:
        """State sent to one client this round (hook may tamper with it)."""
        state = self.global_state()
        if self.broadcast_hook is not None:
            state = self.broadcast_hook(self._round, client_id, state)
        return state

    def aggregate(
        self,
        updates: Sequence[ClientUpdate],
        expected_participants: Optional[int] = None,
        min_participation: float = 1.0,
        staleness: Optional[Dict[int, float]] = None,
    ) -> StateDict:
        """Aggregate the round's client updates into the global model.

        The update set may be a *subset* of the round's selected clients
        (fault-tolerant rounds drop stragglers and crashed clients); FedAvg
        re-weights the survivors by ``num_samples``, so partial aggregation
        stays a correctly-weighted average.  With screening enabled, updates
        are validated against this round's broadcast state first and
        quarantined clients are excluded.  When ``expected_participants`` is
        given, the server additionally enforces the ``min_participation``
        quorum over the *accepted* set — both benign drops and adversarial
        quarantines count against it.

        ``staleness`` maps client id -> the server-side staleness weight
        ``s(lag)`` the async engine applied to that client's effective state
        (missing clients default to ``1.0``, i.e. fresh).  The mapping is
        forwarded to staleness-aware robust aggregators so selection rules
        (median / trimmed mean / Krum) can discount lag-decayed states that
        would otherwise masquerade as geometrically central; aggregators
        without the keyword simply never see it.

        With ``gate_aggregate`` enabled, the merged global state must be
        finite and within ``gate_norm_multiplier`` times the median accepted
        delta norm of the broadcast reference.  A failing flush is rejected:
        offending updates (non-finite, or norm beyond the same multiplier of
        the median) are recorded in :attr:`last_gate`, the round is
        re-aggregated without them, and gate + quorum are re-checked — a
        second failure raises loudly rather than silently shipping a
        poisoned global model.
        """
        if not updates:
            raise ValueError("no updates to aggregate")
        if not 0.0 < min_participation <= 1.0:
            raise ValueError("min_participation must be in (0, 1]")
        reference = self.global_state()
        self.last_gate = {}
        if self.screening is not None:
            self.last_screening = screen_updates(updates, reference, self.screening)
            accepted = self.last_screening.accepted
        else:
            self.last_screening = None
            accepted = list(updates)
        required: Optional[int] = None
        if expected_participants is not None:
            required = max(1, math.ceil(min_participation * expected_participants))
            if len(accepted) < required:
                rejected = (
                    self.last_screening.rejected if self.last_screening else {}
                )
                detail = (
                    "; screening rejected "
                    + ", ".join(
                        f"client {cid}: {reason}"
                        for cid, reason in sorted(rejected.items())
                    )
                    if rejected
                    else ""
                )
                raise ValueError(
                    f"refusing to aggregate {len(accepted)}/{expected_participants} "
                    f"updates: min_participation={min_participation:g} requires "
                    f"{required}{detail}"
                )
        if not accepted:
            raise ValueError(
                "screening rejected every update this round; nothing to aggregate"
            )
        merged = self._merge(accepted, reference, staleness)
        if self.gate_aggregate:
            merged = self._gate_flush(
                merged, accepted, reference, staleness, required
            )
        self.model.load_state_dict(merged)
        self._round += 1
        return merged

    def _merge(
        self,
        accepted: Sequence[ClientUpdate],
        reference: StateDict,
        staleness: Optional[Dict[int, float]],
    ) -> StateDict:
        kwargs: Dict[str, object] = {}
        if staleness is not None and self._aggregate_accepts_staleness:
            kwargs["staleness"] = [
                float(staleness.get(update.client_id, 1.0)) for update in accepted
            ]
        return self._aggregate(
            [update.state for update in accepted],
            weights=[update.num_samples for update in accepted],
            reference=reference,
            **kwargs,
        )

    def _gate_flush(
        self,
        merged: StateDict,
        accepted: Sequence[ClientUpdate],
        reference: StateDict,
        staleness: Optional[Dict[int, float]],
        required: Optional[int],
    ) -> StateDict:
        """Sanity-check the merged global state; re-aggregate on failure.

        Returns the (possibly re-aggregated) merged state, or raises when
        the flush cannot be salvaged.
        """
        flat_reference = _flatten_state(reference)
        norms: Dict[int, float] = {}
        offenders: Dict[int, str] = {}
        for update in accepted:
            delta = _flatten_state(update.state) - flat_reference
            if not np.all(np.isfinite(delta)):
                offenders[update.client_id] = "gate_non_finite"
            else:
                norms[update.client_id] = float(np.linalg.norm(delta))

        def check(candidate: StateDict, median_norm: float) -> Optional[str]:
            flat = _flatten_state(candidate)
            if not np.all(np.isfinite(flat)):
                return "non-finite global state"
            if median_norm > 0.0:
                drift = float(np.linalg.norm(flat - flat_reference))
                limit = self.gate_norm_multiplier * median_norm
                if drift > limit:
                    return (
                        f"global drift {drift:.6g} exceeds "
                        f"{self.gate_norm_multiplier:g} x median delta norm "
                        f"({median_norm:.6g})"
                    )
            return None

        median_norm = float(np.median(list(norms.values()))) if norms else 0.0
        failure = check(merged, median_norm)
        if failure is None:
            return merged
        if median_norm > 0.0:
            limit = self.gate_norm_multiplier * median_norm
            for cid, norm in norms.items():
                if norm > limit:
                    offenders[cid] = "gate_norm_exploded"
        if not offenders:
            raise RuntimeError(
                f"aggregate sanity gate rejected the flush ({failure}) but no "
                "offending update could be identified; refusing to update the "
                "global model"
            )
        self.last_gate = dict(offenders)
        _log.warning(
            "aggregate gate rejected flush (%s); re-aggregating without %s",
            failure,
            sorted(offenders),
        )
        survivors: List[ClientUpdate] = [
            update for update in accepted if update.client_id not in offenders
        ]
        if not survivors:
            raise RuntimeError(
                f"aggregate sanity gate rejected every update ({failure}); "
                "nothing left to aggregate"
            )
        if required is not None and len(survivors) < required:
            detail = ", ".join(
                f"client {cid}: {reason}"
                for cid, reason in sorted(offenders.items())
            )
            raise ValueError(
                f"aggregate gate quarantined {len(offenders)} update(s) "
                f"({detail}), leaving {len(survivors)} < required {required}"
            )
        merged = self._merge(survivors, reference, staleness)
        surviving_norms = [norms[u.client_id] for u in survivors if u.client_id in norms]
        median_norm = float(np.median(surviving_norms)) if surviving_norms else 0.0
        failure = check(merged, median_norm)
        if failure is not None:
            raise RuntimeError(
                "aggregate sanity gate still failing after dropping "
                f"{sorted(offenders)}: {failure}"
            )
        return merged

    def restore(self, state: StateDict, round_index: int) -> None:
        """Adopt checkpointed global weights and round counter (resume path)."""
        if round_index < 0:
            raise ValueError("round_index must be non-negative")
        self.model.load_state_dict(state)
        self._round = int(round_index)
