"""Optimizer behaviour: SGD, momentum, Adam, lr schedules."""

import numpy as np
import pytest

from repro.nn.optim import SGD, Adam, StepDecaySchedule
from repro.nn.tensor import Tensor


def quadratic_param(start=5.0):
    return Tensor(np.array([start]), requires_grad=True)


def quadratic_step(param, optimizer):
    optimizer.zero_grad()
    loss = (param * param).sum()
    loss.backward()
    optimizer.step()
    return loss.item()


class TestSGD:
    def test_plain_sgd_single_step(self):
        p = quadratic_param(4.0)
        opt = SGD([p], lr=0.1)
        quadratic_step(p, opt)
        np.testing.assert_allclose(p.data, [4.0 - 0.1 * 8.0])

    def test_converges_on_quadratic(self):
        p = quadratic_param()
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            quadratic_step(p, opt)
        assert abs(p.data[0]) < 1e-4

    def test_momentum_accelerates(self):
        p_plain, p_momentum = quadratic_param(), quadratic_param()
        opt_plain = SGD([p_plain], lr=0.01)
        opt_momentum = SGD([p_momentum], lr=0.01, momentum=0.9)
        for _ in range(30):
            quadratic_step(p_plain, opt_plain)
            quadratic_step(p_momentum, opt_momentum)
        assert abs(p_momentum.data[0]) < abs(p_plain.data[0])

    def test_weight_decay_shrinks_params(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        p.grad = np.array([0.0])
        opt.step()
        np.testing.assert_allclose(p.data, [0.9])

    def test_skips_params_without_grad(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = SGD([p], lr=0.1)
        opt.step()  # no grad: no change, no crash
        np.testing.assert_allclose(p.data, [1.0])

    def test_validation(self):
        p = quadratic_param()
        with pytest.raises(ValueError):
            SGD([], lr=0.1)
        with pytest.raises(ValueError):
            SGD([p], lr=-1.0)
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            SGD([Tensor(np.zeros(1))], lr=0.1)  # requires_grad=False


class TestAdam:
    def test_converges_on_quadratic(self):
        p = quadratic_param()
        opt = Adam([p], lr=0.3)
        for _ in range(200):
            quadratic_step(p, opt)
        assert abs(p.data[0]) < 1e-3

    def test_first_step_is_lr_sized(self):
        # With bias correction, the first Adam step is ~lr * sign(grad).
        p = quadratic_param(1.0)
        opt = Adam([p], lr=0.1)
        quadratic_step(p, opt)
        np.testing.assert_allclose(p.data, [0.9], atol=1e-6)

    def test_weight_decay(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = Adam([p], lr=0.1, weight_decay=1.0)
        p.grad = np.array([0.0])
        opt.step()
        assert p.data[0] < 1.0


class TestStepDecaySchedule:
    def test_decays_at_milestones(self):
        p = quadratic_param()
        opt = SGD([p], lr=1.0)
        schedule = StepDecaySchedule(opt, rates=[1e-3, 5e-4, 1e-4], milestones=[2, 4])
        assert opt.lr == 1e-3
        schedule.step()  # round 1
        assert opt.lr == 1e-3
        schedule.step()  # round 2 -> second rate
        assert opt.lr == 5e-4
        schedule.step()
        schedule.step()  # round 4 -> third rate
        assert opt.lr == 1e-4
        schedule.step()
        assert opt.lr == 1e-4

    def test_validation(self):
        p = quadratic_param()
        opt = SGD([p], lr=1.0)
        with pytest.raises(ValueError):
            StepDecaySchedule(opt, rates=[1e-3], milestones=[1])
        with pytest.raises(ValueError):
            StepDecaySchedule(opt, rates=[1e-3, 1e-4, 1e-5], milestones=[4, 2])
