"""[Knowledge-3] Substitute ``t'`` from a malicious FL client (RQ4 in-text).

A malicious *client* inside the federation owns a perfectly legitimate
perturbation ``t'`` of its own — optimized against the same global model —
and tries to use it to infer membership of another client's data.  Under an
i.i.d. partition ``t'`` even yields good test accuracy, yet the attack fails:
``t'`` was never optimized on the *victim's* training samples, so members
and non-members remain non-separable under ``t'``-blended queries.

The report includes the side measurements the paper discusses: test/train
accuracy under ``t'`` and the SSIM between ``t`` and ``t'``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.base import AttackData, CIPTarget, evaluate_attack
from repro.attacks.ob_malt import ObMALTAttack
from repro.core.cip_client import CIPClient
from repro.core.trainer import evaluate_with_perturbation
from repro.data.dataset import Dataset
from repro.metrics.classification import BinaryMetrics
from repro.metrics.ssim import ssim


@dataclass
class SubstitutePerturbationReport:
    """Attack outcome plus the utility diagnostics of Table/RQ4-Knowledge-3."""

    metrics: BinaryMetrics
    auc: float
    test_accuracy_with_substitute: float
    train_accuracy_with_substitute: float
    train_accuracy_with_true_t: float
    ssim_t_tprime: float

    @property
    def accuracy(self) -> float:
        return self.metrics.accuracy


class SubstitutePerturbationAttack:
    """Attack a victim's data with another client's perturbation."""

    name = "Adaptive-Knowledge-3"

    def run(
        self,
        victim: CIPClient,
        attacker: CIPClient,
        test_data: Dataset,
        nonmembers: Dataset,
    ) -> SubstitutePerturbationReport:
        substitute_t = attacker.perturbation.value
        true_t = victim.perturbation.value
        target = CIPTarget(
            victim.model, victim.dataset.num_classes, victim.cip_config, guess_t=substitute_t
        )
        data = AttackData.from_pools(victim.dataset, nonmembers, seed=0)
        report = evaluate_attack(ObMALTAttack(), target, data)

        test_eval = evaluate_with_perturbation(
            victim.model, substitute_t, test_data, victim.cip_config
        )
        train_eval_substitute = evaluate_with_perturbation(
            victim.model, substitute_t, victim.dataset, victim.cip_config
        )
        train_eval_true = evaluate_with_perturbation(
            victim.model, true_t, victim.dataset, victim.cip_config
        )
        return SubstitutePerturbationReport(
            metrics=report.metrics,
            auc=report.auc,
            test_accuracy_with_substitute=test_eval.accuracy,
            train_accuracy_with_substitute=train_eval_substitute.accuracy,
            train_accuracy_with_true_t=train_eval_true.accuracy,
            ssim_t_tprime=ssim(true_t, substitute_t),
        )
