"""Malicious-server instrumentation (threat model of Nasr et al.).

The paper's internal adversary is a malicious server, which can:

* **passively** record every client's local model at chosen rounds — the
  simulation's ``snapshot_rounds`` already captures this; and
* **actively** tamper with the model it broadcasts to a victim client,
  running gradient *ascent* on target samples so that members (which the
  victim will re-fit) become separable from non-members after the victim's
  next update.

:class:`GradientAscentHook` implements the active tampering as a server
``broadcast_hook``; the inference logic that consumes the resulting
observations lives in :mod:`repro.attacks.internal`.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.nn.layers import Module
from repro.nn.losses import cross_entropy
from repro.nn.serialization import clone_state_dict
from repro.nn.tensor import Tensor

StateDict = Dict[str, np.ndarray]
ForwardFn = Callable[[Module, np.ndarray], Tensor]


def _default_forward(model: Module, inputs: np.ndarray) -> Tensor:
    return model(Tensor(inputs))


class GradientAscentHook:
    """Broadcast hook that raises the loss on target samples before sending.

    Parameters
    ----------
    model:
        A scratch model instance of the global architecture, used to compute
        gradients of the tampered state (never shared with clients).
    target_inputs / target_labels:
        The samples whose membership the server wants to infer.
    ascent_lr / ascent_steps:
        Gradient-ascent step size and count per broadcast.
    victim_id:
        Only the victim's broadcast is altered; ``None`` alters everyone's
        (the strongest variant).
    start_round:
        Rounds before this pass through untouched (the paper starts the
        active attack in the last few rounds).
    """

    def __init__(
        self,
        model: Module,
        target_inputs: np.ndarray,
        target_labels: np.ndarray,
        ascent_lr: float = 1e-2,
        ascent_steps: int = 1,
        victim_id: Optional[int] = None,
        start_round: int = 0,
        forward: ForwardFn = _default_forward,
    ) -> None:
        self._model = model
        self.target_inputs = np.asarray(target_inputs)
        self.target_labels = np.asarray(target_labels, dtype=np.int64)
        self.ascent_lr = ascent_lr
        self.ascent_steps = ascent_steps
        self.victim_id = victim_id
        self.start_round = start_round
        self._forward = forward
        self.tampered_rounds: list = []

    def __call__(self, round_index: int, client_id: int, state: StateDict) -> StateDict:
        if round_index < self.start_round:
            return state
        if self.victim_id is not None and client_id != self.victim_id:
            return state
        tampered = clone_state_dict(state)
        self._model.load_state_dict(tampered)
        self._model.train()
        for _ in range(self.ascent_steps):
            self._model.zero_grad()
            logits = self._forward(self._model, self.target_inputs)
            loss = cross_entropy(logits, self.target_labels)
            loss.backward()
            for param in self._model.parameters():
                if param.grad is not None:
                    # Ascent: step *up* the loss surface on the targets.
                    param.data = param.data + self.ascent_lr * param.grad
        self.tampered_rounds.append(round_index)
        return clone_state_dict(self._model.state_dict())


def per_sample_losses_of_state(
    model: Module,
    state: StateDict,
    inputs: np.ndarray,
    labels: np.ndarray,
    forward: ForwardFn = _default_forward,
) -> np.ndarray:
    """Per-sample cross-entropy of an arbitrary state dict on given samples.

    The passive malicious server applies this to each snapshot it recorded.
    """
    from repro.nn.losses import per_sample_cross_entropy
    from repro.nn.tensor import no_grad

    model.load_state_dict(state)
    model.eval()
    with no_grad():
        logits = forward(model, inputs)
    return per_sample_cross_entropy(logits.data, labels)
