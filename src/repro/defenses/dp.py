"""Differential privacy: DP-SGD / DP-Adam (Abadi et al.) with an accountant.

Per-sample gradients are clipped to ``clip_norm`` and Gaussian noise of
standard deviation ``noise_multiplier * clip_norm`` is added to the summed
batch gradient — the canonical DP-SGD mechanism.  Deployed *locally* at each
FL client (LDP), because central DP does not defend against the paper's
malicious server.

The accountant maps a privacy budget ``(epsilon, delta)`` to the noise
multiplier.  We implement Renyi-DP composition for the Gaussian mechanism
(with the standard Poisson-subsampling amplification bound) and invert it by
bisection; exactness beyond monotonicity is not required by the benches
(the evaluation only relies on bigger epsilon <=> less noise).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.data.dataset import DataLoader, Dataset
from repro.fl.client import ClientConfig, FLClient
from repro.nn.layers import Module
from repro.nn.losses import cross_entropy
from repro.nn.optim import Adam, Optimizer, SGD
from repro.nn.tensor import Tensor
from repro.utils.rng import SeedLike, as_generator, derive_rng

_RDP_ORDERS = tuple([1.25, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 16.0, 32.0, 64.0])


def rdp_gaussian(noise_multiplier: float, order: float) -> float:
    """RDP of the Gaussian mechanism at one order: ``alpha / (2 sigma^2)``."""
    return order / (2.0 * noise_multiplier**2)


def rdp_to_epsilon(rdp_values: Sequence[float], delta: float) -> float:
    """Convert accumulated RDP at several orders to an (epsilon, delta) bound."""
    best = math.inf
    for order, rdp in zip(_RDP_ORDERS, rdp_values):
        if order <= 1.0:
            continue
        eps = rdp + math.log(1.0 / delta) / (order - 1.0)
        best = min(best, eps)
    return best


def epsilon_for(
    noise_multiplier: float, steps: int, sampling_rate: float, delta: float
) -> float:
    """Epsilon after ``steps`` subsampled-Gaussian steps.

    Uses the simple amplification-by-subsampling bound
    ``RDP_subsampled <= q^2 * RDP_full`` (tight enough for small q; the
    evaluation only needs the qualitative epsilon-noise trade-off).
    """
    if noise_multiplier <= 0:
        return math.inf
    rdp = [
        steps * (sampling_rate**2) * rdp_gaussian(noise_multiplier, order)
        for order in _RDP_ORDERS
    ]
    return rdp_to_epsilon(rdp, delta)


def noise_multiplier_for_epsilon(
    epsilon: float,
    steps: int,
    sampling_rate: float,
    delta: float = 1e-5,
    precision: float = 1e-3,
) -> float:
    """Smallest noise multiplier achieving the requested epsilon (bisection)."""
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    lo, hi = 1e-3, 1e4
    if epsilon_for(hi, steps, sampling_rate, delta) > epsilon:
        raise ValueError("epsilon unreachable even with maximal noise")
    while hi - lo > precision:
        mid = (lo + hi) / 2.0
        if epsilon_for(mid, steps, sampling_rate, delta) > epsilon:
            lo = mid
        else:
            hi = mid
    return hi


@dataclass
class DPConfig:
    """DP-SGD hyperparameters."""

    epsilon: float = 8.0
    delta: float = 1e-5
    clip_norm: float = 1.0
    lr: float = 5e-2
    optimizer: str = "sgd"  # "sgd" or "adam" (DP-Adam, the paper's baseline)
    noise_multiplier: Optional[float] = None  # derived from epsilon if None


class DPTrainer:
    """DP-SGD / DP-Adam training of a single model (external-adversary setting)."""

    def __init__(self, model: Module, config: DPConfig, seed: SeedLike = None) -> None:
        self.model = model
        self.config = config
        self._rng = as_generator(seed)
        if config.optimizer == "adam":
            self._optimizer: Optimizer = Adam(model.parameters(), lr=config.lr)
        elif config.optimizer == "sgd":
            self._optimizer = SGD(model.parameters(), lr=config.lr, momentum=0.9)
        else:
            raise ValueError("optimizer must be 'sgd' or 'adam'")
        self.steps_taken = 0

    def _resolve_noise(self, dataset: Dataset, epochs: int, batch_size: int) -> float:
        if self.config.noise_multiplier is not None:
            return self.config.noise_multiplier
        steps = max(1, (len(dataset) // batch_size)) * epochs
        q = min(1.0, batch_size / max(len(dataset), 1))
        return noise_multiplier_for_epsilon(
            self.config.epsilon, steps, q, self.config.delta
        )

    def _dp_step(self, inputs: np.ndarray, labels: np.ndarray, noise: float) -> float:
        """One DP-SGD step: per-sample clip, sum, noise, average, update."""
        params = self.model.parameters()
        accumulated = [np.zeros_like(p.data) for p in params]
        batch = len(inputs)
        total_loss = 0.0
        self.model.train()
        for i in range(batch):
            self.model.zero_grad()
            logits = self.model(Tensor(inputs[i : i + 1]))
            loss = cross_entropy(logits, labels[i : i + 1])
            loss.backward()
            total_loss += loss.item()
            norm_sq = 0.0
            for p in params:
                if p.grad is not None:
                    norm_sq += float(np.sum(p.grad**2))
            norm = math.sqrt(norm_sq)
            scale = min(1.0, self.config.clip_norm / max(norm, 1e-12))
            for acc, p in zip(accumulated, params):
                if p.grad is not None:
                    acc += p.grad * scale
        sigma = noise * self.config.clip_norm
        for acc, p in zip(accumulated, params):
            noisy = acc + self._rng.normal(0.0, sigma, size=acc.shape)
            p.grad = noisy / batch
        self._optimizer.step()
        self.steps_taken += 1
        return total_loss / batch

    def train(
        self,
        dataset: Dataset,
        epochs: int,
        batch_size: int = 32,
        seed: SeedLike = None,
    ) -> List[float]:
        noise = self._resolve_noise(dataset, epochs, batch_size)
        self.resolved_noise_multiplier = noise
        losses: List[float] = []
        for epoch in range(epochs):
            loader = DataLoader(
                dataset, batch_size=batch_size, shuffle=True, seed=derive_rng(seed, epoch)
            )
            epoch_loss = 0.0
            count = 0
            for inputs, labels in loader:
                epoch_loss += self._dp_step(inputs, labels, noise) * len(labels)
                count += len(labels)
            losses.append(epoch_loss / max(count, 1))
        return losses


class DPClient(FLClient):
    """FL client training with local DP (LDP) — the paper's internal baseline."""

    def __init__(
        self,
        client_id: int,
        dataset: Dataset,
        model_factory: Callable[[], Module],
        dp_config: DPConfig,
        config: Optional[ClientConfig] = None,
        seed: SeedLike = None,
        total_rounds: int = 1,
    ) -> None:
        super().__init__(client_id, dataset, model_factory, config=config, seed=seed)
        self.dp_config = dp_config
        self._dp_trainer = DPTrainer(self.model, dp_config, seed=derive_rng(seed, "dp"))
        # Budget the noise over the whole training run, not one round.
        steps = max(1, len(dataset) // self.config.batch_size) * max(
            total_rounds * self.config.local_epochs, 1
        )
        q = min(1.0, self.config.batch_size / max(len(dataset), 1))
        if dp_config.noise_multiplier is None:
            self._noise = noise_multiplier_for_epsilon(
                dp_config.epsilon, steps, q, dp_config.delta
            )
        else:
            self._noise = dp_config.noise_multiplier

    def _train_round(self) -> list:
        losses = []
        for epoch in range(self.config.local_epochs):
            loader = DataLoader(
                self.dataset,
                batch_size=self.config.batch_size,
                shuffle=True,
                seed=derive_rng(self._seed, "dp-round", self._round, epoch),
            )
            epoch_loss = 0.0
            count = 0
            for inputs, labels in loader:
                epoch_loss += self._dp_trainer._dp_step(inputs, labels, self._noise) * len(labels)
                count += len(labels)
            losses.append(epoch_loss / max(count, 1))
        return losses
