"""Execution profiles: how much compute an experiment run spends.

The paper's experiments train dozens of GPU models; on a CPU NumPy substrate
every experiment takes a ``Profile`` controlling dataset size, training
length, and sweep density.  ``QUICK`` keeps the whole benchmark suite within
tens of minutes while preserving every qualitative result; ``FULL`` runs the
paper-shaped sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple


@dataclass(frozen=True)
class Profile:
    """Knobs shared by all experiments."""

    name: str
    samples_per_class_image: int  # synthetic CIFAR-100 / CH-MNIST size
    samples_per_class_tabular: int
    epochs_scale: float  # multiplies the per-dataset calibrated epochs
    alphas: Tuple[float, ...]  # blending-parameter sweep
    client_counts: Tuple[int, ...]  # federation sizes (paper: 2,5,10,20,50)
    fl_rounds: int  # communication rounds per federated run
    attack_pool: int  # samples per member/non-member pool
    whitebox_pool: int  # pool size for gradient-based (slow) attacks
    epsilons: Tuple[float, ...]  # DP budget sweep
    seeds: Tuple[int, ...] = (0,)

    def epochs(self, base: int) -> int:
        return max(1, int(round(base * self.epochs_scale)))


SMOKE = Profile(
    name="smoke",
    samples_per_class_image=3,
    samples_per_class_tabular=2,
    epochs_scale=0.15,
    alphas=(0.5,),
    client_counts=(2,),
    fl_rounds=3,
    attack_pool=20,
    whitebox_pool=8,
    epsilons=(8.0,),
)

QUICK = Profile(
    name="quick",
    samples_per_class_image=8,
    samples_per_class_tabular=6,
    epochs_scale=0.75,
    alphas=(0.1, 0.5, 0.9),
    client_counts=(2, 5),
    fl_rounds=30,  # CIP federations need ~30 rounds to reach the defended regime
    attack_pool=80,
    whitebox_pool=24,
    epsilons=(2.0, 8.0, 32.0),
)

FULL = Profile(
    name="full",
    samples_per_class_image=12,
    samples_per_class_tabular=8,
    epochs_scale=1.0,
    alphas=(0.1, 0.3, 0.5, 0.7, 0.9),
    client_counts=(2, 5, 10, 20),
    fl_rounds=40,
    attack_pool=120,
    whitebox_pool=40,
    epsilons=(1.0, 2.0, 8.0, 16.0, 32.0),
)

PROFILES = {"smoke": SMOKE, "quick": QUICK, "full": FULL}


def get_profile(name: str) -> Profile:
    if name not in PROFILES:
        raise ValueError(f"unknown profile {name!r}; choose from {sorted(PROFILES)}")
    return PROFILES[name]
