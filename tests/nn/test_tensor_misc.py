"""Tensor API surface not covered by the gradient checks."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor, no_grad


class TestConstruction:
    def test_from_tensor_unwraps(self):
        a = Tensor(np.ones(3))
        b = Tensor(a)
        np.testing.assert_array_equal(b.data, a.data)

    def test_repr(self):
        assert "requires_grad=True" in repr(Tensor(np.ones(2), requires_grad=True))
        assert "requires_grad" not in repr(Tensor(np.ones(2)))

    def test_len_size_ndim(self):
        t = Tensor(np.zeros((4, 5)))
        assert len(t) == 4
        assert t.size == 20
        assert t.ndim == 2

    def test_item_on_scalar(self):
        assert Tensor(np.array(3.5)).item() == 3.5

    def test_numpy_returns_backing_array(self):
        arr = np.ones(3)
        assert Tensor(arr).numpy() is arr


class TestCopySemantics:
    def test_copy_is_independent(self):
        t = Tensor(np.ones(3), requires_grad=True)
        c = t.copy()
        c.data[0] = 99.0
        assert t.data[0] == 1.0
        assert c.requires_grad

    def test_transpose_property(self):
        t = Tensor(np.arange(6.0).reshape(2, 3))
        np.testing.assert_array_equal(t.T.data, t.data.T)

    def test_argmax(self):
        t = Tensor(np.array([[1.0, 3.0], [5.0, 2.0]]))
        np.testing.assert_array_equal(t.argmax(axis=1), [1, 0])


class TestGradEnabledState:
    def test_nested_no_grad(self):
        x = Tensor(np.ones(2), requires_grad=True)
        with no_grad():
            with no_grad():
                y = x * 2
            z = x * 3  # still inside outer no_grad
        assert not y.requires_grad
        assert not z.requires_grad
        w = x * 4  # outside: graph is back
        assert w.requires_grad

    def test_tensor_created_inside_no_grad_never_requires(self):
        with no_grad():
            t = Tensor(np.ones(2), requires_grad=True)
        assert not t.requires_grad


class TestBackwardEdgeCases:
    def test_backward_with_broadcast_grad(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        (x * 2).backward(np.ones((1, 3)))  # broadcast up to (2, 3)
        np.testing.assert_array_equal(x.grad, 2 * np.ones((2, 3)))

    def test_repeated_backward_accumulates(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x * 3
        y.backward()
        y2 = x * 3
        y2.backward()
        np.testing.assert_array_equal(x.grad, [6.0])

    def test_pow_tensor_exponent_rejected(self):
        x = Tensor(np.ones(2), requires_grad=True)
        with pytest.raises(TypeError):
            x ** Tensor(np.ones(2))

    def test_rsub_rdiv(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        (10.0 - x).backward()
        np.testing.assert_array_equal(x.grad, [-1.0])
        x.zero_grad()
        (8.0 / x).backward()
        np.testing.assert_array_equal(x.grad, [-2.0])  # -8/x^2
