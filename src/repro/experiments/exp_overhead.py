"""Table XI: CIP's overhead — parameter count and epochs to converge (RQ5)."""

from __future__ import annotations

from typing import Optional

from repro.core.perturbation import Perturbation
from repro.core.trainer import CIPTrainer
from repro.experiments.common import get_bundle, make_cip_config
from repro.experiments.profiles import Profile
from repro.experiments.registry import register
from repro.experiments.results import ExperimentResult
from repro.fl.training import evaluate_model, train_supervised
from repro.nn.models import build_model
from repro.nn.optim import SGD
from repro.utils.rng import derive_rng

ARCHITECTURES = ("resnet", "densenet", "vgg")
CONVERGENCE_TRAIN_ACC = 0.9
MAX_EPOCHS = 60


def _epochs_to_converge_legacy(bundle, architecture: str, seed: int = 0) -> Optional[int]:
    model = build_model(
        architecture,
        bundle.num_classes,
        in_channels=bundle.train.inputs.shape[1],
        seed=derive_rng(seed, "conv-legacy", architecture),
    )
    optimizer = SGD(model.parameters(), lr=5e-2, momentum=0.9)
    for epoch in range(1, MAX_EPOCHS + 1):
        train_supervised(
            model, bundle.train, optimizer, epochs=1, batch_size=32,
            seed=derive_rng(seed, "cl", epoch),
        )
        if evaluate_model(model, bundle.train).accuracy >= CONVERGENCE_TRAIN_ACC:
            return epoch
    return None


def _epochs_to_converge_cip(bundle, architecture: str, seed: int = 0) -> Optional[int]:
    config = make_cip_config("cifar100", alpha=0.5)
    model = build_model(
        architecture,
        bundle.num_classes,
        dual_channel=True,
        in_channels=bundle.train.inputs.shape[1],
        seed=derive_rng(seed, "conv-cip", architecture),
    )
    perturbation = Perturbation(
        bundle.train.input_shape, config, seed=derive_rng(seed, "conv-t")
    )
    optimizer = SGD(model.parameters(), lr=5e-2, momentum=0.9)
    trainer = CIPTrainer(model, perturbation, optimizer, config=config)
    for epoch in range(1, MAX_EPOCHS + 1):
        trainer.train_epoch(bundle.train, batch_size=32, seed=derive_rng(seed, "cc", epoch))
        if trainer.evaluate(bundle.train).accuracy >= CONVERGENCE_TRAIN_ACC:
            return epoch
    return None


@register("table11", "Overhead: parameters and epochs to converge", "Table XI")
def table11(profile: Profile) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="table11",
        title="Model-size and convergence overhead of CIP (dual channel, shared backbone)",
        columns=[
            "model",
            "params_no_defense",
            "params_cip",
            "param_overhead_pct",
            "epochs_no_defense",
            "epochs_cip",
        ],
    )
    bundle = get_bundle("cifar100", profile)
    in_channels = bundle.train.inputs.shape[1]
    for architecture in ARCHITECTURES:
        single = build_model(
            architecture, bundle.num_classes, in_channels=in_channels, seed=0
        )
        dual = build_model(
            architecture, bundle.num_classes, dual_channel=True, in_channels=in_channels, seed=0
        )
        params_single = single.num_parameters()
        params_dual = dual.num_parameters()
        epochs_legacy = _epochs_to_converge_legacy(bundle, architecture)
        epochs_cip = _epochs_to_converge_cip(bundle, architecture)
        result.add_row(
            model=architecture,
            params_no_defense=params_single,
            params_cip=params_dual,
            param_overhead_pct=100.0 * (params_dual - params_single) / params_single,
            epochs_no_defense=epochs_legacy if epochs_legacy is not None else f">{MAX_EPOCHS}",
            epochs_cip=epochs_cip if epochs_cip is not None else f">{MAX_EPOCHS}",
        )
    result.add_note("paper: +0.87% parameters (the widened dense head); half the epochs")
    return result
