"""Correctness tooling for the autograd substrate.

Everything in the reproduction rests on ``repro.nn`` computing *exact*
gradients (DESIGN.md section 2): CIP's Step I/II, the gradient-based MI
attacks, and the Theorem-1 empirical check all silently degrade if a
backward pass is wrong.  This module enforces that claim three ways:

1. :func:`gradcheck` — a reusable finite-difference gradient checker (the
   engine behind ``tests/nn/test_gradcheck_sweep.py``, which fuzzes every
   differentiable op across negative axes, broadcasting, keepdims, ties,
   and dtypes).  On mismatch it raises :class:`GradcheckError` naming the
   op and the first offending element.

2. **Debug mode** — opt-in invariant guards in the style of PyTorch's
   ``detect_anomaly``.  While enabled (via :func:`enable_debug`, the
   :class:`debug_mode` context manager, or the ``REPRO_NN_DEBUG``
   environment variable) every op output and every accumulated gradient is
   checked: a gradient's shape must equal its tensor's shape, its dtype
   must be floating, and NaN/Inf values raise immediately — with the op
   name and a short provenance chain in the error.  The guards are
   installed by *swapping in* instrumented ``Tensor._make`` /
   ``Tensor._accumulate`` methods, so the guarded-off path runs the
   original, untouched code: zero overhead when disabled.

3. **Op profiling** — per-op call/time/bytes counters behind the same
   hooks (:func:`enable_op_profiling` / :class:`profile_ops`).  Forward
   ops are timed exclusively (nested ops subtract from their parent), and
   backward closures are timed per op, so a federated round can be
   profiled op-by-op.  Surfaced through ``ExecutionConfig`` and the
   experiments CLI (``--profile-ops``); per-round deltas land in
   ``RoundMetrics.op_stats``.
"""

from __future__ import annotations

import functools
import os
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.nn.backend import (
    WorkspaceStats,
    active_backend_name,
    get_backend,
    use_backend,
)
from repro.nn.tensor import Tensor

#: Reserved key under which executors surface the active backend's
#: workspace-freelist counters inside an op-stats dict (and hence
#: ``RoundMetrics.op_stats``).  The synthetic :class:`OpStat` encodes
#: ``calls`` = freelist hits, ``backward_calls`` = freelist misses,
#: ``bytes_out`` = bytes resident in the pool; times stay zero.
#: ``format_op_table`` renders it as a footer line instead of an op row.
WORKSPACE_STAT_KEY = "workspace"

#: Setting this environment variable (to anything but ``0``/``false``/empty)
#: turns the invariant guards on at import time — workers of the process
#: backend inherit it, so one variable covers a whole federated run.
DEBUG_ENV_VAR = "REPRO_NN_DEBUG"


# ----------------------------------------------------------------------
# Errors
# ----------------------------------------------------------------------
class DiagnosticsError(RuntimeError):
    """Base class for all diagnostics failures."""


class GradcheckError(DiagnosticsError):
    """Analytic and numerical gradients disagree (or the graph is broken)."""


class InvariantError(DiagnosticsError):
    """A structural autograd invariant was violated (grad shape/dtype)."""


class AnomalyError(DiagnosticsError):
    """A forward output or gradient contains NaN/Inf values."""


def provenance(tensor: Tensor, depth: int = 6) -> str:
    """A short ``op <- parent-op <- ...`` chain for error messages.

    Follows the first parent only — enough to locate the offending
    subgraph without serializing the whole tape.
    """
    chain: List[str] = []
    node: Optional[Tensor] = tensor
    while node is not None and len(chain) < depth:
        chain.append(node._op if node._op else "leaf")
        node = node._parents[0] if node._parents else None
    if node is not None:
        chain.append("...")
    return " <- ".join(chain)


# ----------------------------------------------------------------------
# Instrumented Tensor methods (installed only while debug/profiling is on)
# ----------------------------------------------------------------------
_ORIG_MAKE = Tensor._make
_ORIG_ACCUMULATE = Tensor._accumulate

_DEBUG_ENABLED = False
#: Backward-pass op context: the instrumented backward closures push their
#: op name so ``_accumulate`` guards can report *which op* produced a bad
#: gradient (``_accumulate`` itself has no op argument).
_OP_STACK: List[str] = []


def _describe_parents(parents: Sequence[Tensor]) -> str:
    return ", ".join(
        f"{p._op or 'leaf'}{p.shape}:{p.dtype}" for p in parents
    ) or "(no parents)"


def _instrumented_make(
    self: Tensor,
    data: np.ndarray,
    parents: Tuple[Tensor, ...],
    backward: Callable[[np.ndarray], None],
    op: str,
) -> Tensor:
    if _DEBUG_ENABLED:
        arr = np.asarray(data)
        if np.issubdtype(arr.dtype, np.floating) and not np.all(np.isfinite(arr)):
            raise AnomalyError(
                f"op '{op}' produced non-finite values in its forward output "
                f"(shape {arr.shape}); inputs: {_describe_parents(parents)}"
            )

    inner = backward

    def instrumented_backward(grad: np.ndarray) -> None:
        if _DEBUG_ENABLED:
            garr = np.asarray(grad)
            if np.issubdtype(garr.dtype, np.floating) and not np.all(
                np.isfinite(garr)
            ):
                raise AnomalyError(
                    f"non-finite gradient entering the backward of op '{op}' "
                    f"(shape {garr.shape})"
                )
        profiler = _PROFILER
        start = perf_counter() if profiler is not None else 0.0
        _OP_STACK.append(op)
        try:
            inner(grad)
        finally:
            _OP_STACK.pop()
            if profiler is not None:
                profiler._record_backward(op, perf_counter() - start)

    return _ORIG_MAKE(self, data, parents, instrumented_backward, op)


def _instrumented_accumulate(self: Tensor, grad: np.ndarray) -> None:
    if _DEBUG_ENABLED:
        garr = np.asarray(grad)
        op = _OP_STACK[-1] if _OP_STACK else "backward-seed"
        if garr.shape != self.shape:
            raise InvariantError(
                f"op '{op}' accumulated a gradient of shape {garr.shape} into "
                f"a tensor of shape {self.shape}; tensor provenance: "
                f"{provenance(self)}"
            )
        if not np.issubdtype(garr.dtype, np.floating):
            raise InvariantError(
                f"op '{op}' accumulated a gradient of non-floating dtype "
                f"{garr.dtype} into a tensor of dtype {self.dtype}; tensor "
                f"provenance: {provenance(self)}"
            )
        if not np.all(np.isfinite(garr)):
            raise AnomalyError(
                f"op '{op}' accumulated non-finite gradient values into a "
                f"tensor of shape {self.shape}; tensor provenance: "
                f"{provenance(self)}"
            )
    _ORIG_ACCUMULATE(self, grad)


def _sync_instrumentation() -> None:
    """Swap the instrumented methods in/out based on what is active.

    When neither debug mode nor the profiler is on, ``Tensor`` runs the
    *original* method objects — the off path is bitwise the seed code.
    """
    active = _DEBUG_ENABLED or _PROFILER is not None
    if active:
        Tensor._make = _instrumented_make
        Tensor._accumulate = _instrumented_accumulate
    else:
        Tensor._make = _ORIG_MAKE
        Tensor._accumulate = _ORIG_ACCUMULATE


# ----------------------------------------------------------------------
# Debug mode
# ----------------------------------------------------------------------
def enable_debug() -> None:
    """Turn the invariant guards on (idempotent)."""
    global _DEBUG_ENABLED
    _DEBUG_ENABLED = True
    _sync_instrumentation()


def disable_debug() -> None:
    """Turn the invariant guards off and restore the unguarded methods."""
    global _DEBUG_ENABLED
    _DEBUG_ENABLED = False
    _sync_instrumentation()


def debug_enabled() -> bool:
    return _DEBUG_ENABLED


def env_debug_requested(environ: Optional[Dict[str, str]] = None) -> bool:
    """Whether ``REPRO_NN_DEBUG`` asks for debug mode."""
    value = (environ if environ is not None else os.environ).get(DEBUG_ENV_VAR, "")
    return value.strip().lower() not in ("", "0", "false", "off", "no")


class debug_mode:
    """Context manager enabling the invariant guards for a block.

    Restores the previous state on exit, so nesting and interleaving with
    :func:`enable_debug` behave as expected.
    """

    def __enter__(self) -> "debug_mode":
        self._prev = _DEBUG_ENABLED
        enable_debug()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if not self._prev:
            disable_debug()


# ----------------------------------------------------------------------
# Op profiling
# ----------------------------------------------------------------------
@dataclass
class OpStat:
    """Counters for one op kind.

    ``forward_seconds`` is *exclusive* time: composite ops (e.g. ``var``,
    which runs mean/sub/mul) do not double-count their children.
    ``backward_seconds`` is the total time spent in the op's backward
    closures.  ``bytes_out`` sums the op's forward output sizes.
    ``backend`` names the array backend the op ran on (``"mixed"`` when
    stats from different backends were merged).
    """

    calls: int = 0
    forward_seconds: float = 0.0
    backward_calls: int = 0
    backward_seconds: float = 0.0
    bytes_out: int = 0
    backend: str = ""

    @staticmethod
    def _merge_backend(left: str, right: str) -> str:
        if left == right or not right:
            return left
        if not left:
            return right
        return "mixed"

    def merged(self, other: "OpStat") -> "OpStat":
        return OpStat(
            calls=self.calls + other.calls,
            forward_seconds=self.forward_seconds + other.forward_seconds,
            backward_calls=self.backward_calls + other.backward_calls,
            backward_seconds=self.backward_seconds + other.backward_seconds,
            bytes_out=self.bytes_out + other.bytes_out,
            backend=self._merge_backend(self.backend, other.backend),
        )

    def minus(self, other: "OpStat") -> "OpStat":
        return OpStat(
            calls=self.calls - other.calls,
            forward_seconds=self.forward_seconds - other.forward_seconds,
            backward_calls=self.backward_calls - other.backward_calls,
            backward_seconds=self.backward_seconds - other.backward_seconds,
            bytes_out=self.bytes_out - other.bytes_out,
            backend=self._merge_backend(self.backend, other.backend),
        )

    @property
    def total_seconds(self) -> float:
        return self.forward_seconds + self.backward_seconds


#: Tensor methods wrapped by the profiler, mapped to their op names (the
#: same names ``Tensor._op`` uses, so forward and backward stats line up).
_TENSOR_METHODS = {
    "__add__": "add",
    "__radd__": "add",
    "__neg__": "neg",
    "__mul__": "mul",
    "__rmul__": "mul",
    "__truediv__": "div",
    "__pow__": "pow",
    "__matmul__": "matmul",
    "exp": "exp",
    "log": "log",
    "sqrt": "sqrt",
    "tanh": "tanh",
    "sigmoid": "sigmoid",
    "relu": "relu",
    "abs": "abs",
    "clip": "clip",
    "sum": "sum",
    "mean": "mean",
    "max": "max",
    "reshape": "reshape",
    "transpose": "transpose",
    "__getitem__": "getitem",
    "pad": "pad",
}

#: Free functions wrapped by the profiler (module attribute -> op name).
_TENSOR_FUNCTIONS = {"concatenate": "concat", "stack": "stack", "where": "where"}


class OpProfiler:
    """Per-op call/time/bytes accounting for the autograd substrate."""

    def __init__(self) -> None:
        self.stats: Dict[str, OpStat] = {}
        # Child-time accumulators for exclusive forward timing.
        self._frames: List[float] = []

    def _call(self, name: str, func, args, kwargs):
        self._frames.append(0.0)
        start = perf_counter()
        try:
            result = func(*args, **kwargs)
        finally:
            elapsed = perf_counter() - start
            child_time = self._frames.pop()
            if self._frames:
                self._frames[-1] += elapsed
            stat = self.stats.setdefault(name, OpStat())
            stat.calls += 1
            stat.forward_seconds += max(elapsed - child_time, 0.0)
            stat.backend = OpStat._merge_backend(stat.backend, active_backend_name())
        if isinstance(result, Tensor):
            stat.bytes_out += result.data.nbytes
        return result

    def _record_backward(self, op: str, seconds: float) -> None:
        stat = self.stats.setdefault(op, OpStat())
        stat.backward_calls += 1
        stat.backward_seconds += seconds
        stat.backend = OpStat._merge_backend(stat.backend, active_backend_name())

    def snapshot(self) -> Dict[str, OpStat]:
        return {name: OpStat(**vars(stat)) for name, stat in self.stats.items()}

    def reset(self) -> None:
        self.stats.clear()


_PROFILER: Optional[OpProfiler] = None
#: ``(owner, attribute, original)`` records for profiler un-patching.
_PATCHED: List[Tuple[object, str, object]] = []


def timed_op(name: str, func):
    """Wrap an op callable with profiler accounting.

    A no-op passthrough while profiling is off (one global read per call),
    so ``repro.nn.functional`` can wrap its coarse entry points permanently
    at module-definition time — covering by-value importers that a dynamic
    module-attribute patch would miss.
    """

    @functools.wraps(func)
    def wrapper(*args, **kwargs):
        profiler = _PROFILER
        if profiler is None:
            return func(*args, **kwargs)
        return profiler._call(name, func, args, kwargs)

    wrapper.__wrapped_op__ = name
    return wrapper


def _install_profiler_wrappers() -> None:
    # repro.nn.functional's PROFILED_OPS are not patched here: they carry a
    # permanent timed_op wrapper (see the bottom of that module).
    import repro.nn as nn_pkg
    import repro.nn.tensor as tensor_mod

    targets: List[Tuple[object, str, str]] = [
        (Tensor, method, op) for method, op in _TENSOR_METHODS.items()
    ]
    for func, op in _TENSOR_FUNCTIONS.items():
        targets.append((tensor_mod, func, op))
        # repro.nn re-exports these names; patch that namespace too so
        # `from repro.nn import concatenate`-style callers are covered.
        if hasattr(nn_pkg, func):
            targets.append((nn_pkg, func, op))
    for owner, attr, op in targets:
        original = getattr(owner, attr)
        _PATCHED.append((owner, attr, original))
        setattr(owner, attr, timed_op(op, original))


def _remove_profiler_wrappers() -> None:
    while _PATCHED:
        owner, attr, original = _PATCHED.pop()
        setattr(owner, attr, original)


def enable_op_profiling() -> OpProfiler:
    """Start (or return the already-running) op profiler."""
    global _PROFILER
    if _PROFILER is None:
        _PROFILER = OpProfiler()
        _install_profiler_wrappers()
        _sync_instrumentation()
    return _PROFILER


def disable_op_profiling() -> None:
    """Stop profiling and restore the unwrapped op methods."""
    global _PROFILER
    if _PROFILER is not None:
        _PROFILER = None
        _remove_profiler_wrappers()
        _sync_instrumentation()


def profiling_enabled() -> bool:
    return _PROFILER is not None


def get_op_stats() -> Dict[str, OpStat]:
    """A snapshot of the running profiler's counters (empty when off)."""
    return _PROFILER.snapshot() if _PROFILER is not None else {}


def reset_op_stats() -> None:
    if _PROFILER is not None:
        _PROFILER.reset()


def op_stats_delta(
    before: Dict[str, OpStat], after: Optional[Dict[str, OpStat]] = None
) -> Dict[str, OpStat]:
    """Counters accrued since ``before`` (``after`` defaults to now)."""
    current = get_op_stats() if after is None else after
    delta: Dict[str, OpStat] = {}
    empty = OpStat()
    for name, stat in current.items():
        diff = stat.minus(before.get(name, empty))
        if diff.calls or diff.backward_calls:
            delta[name] = diff
    return delta


def merge_op_stats(*dicts: Dict[str, OpStat]) -> Dict[str, OpStat]:
    """Sum several op-stat dicts (e.g. per-round deltas) into one."""
    merged: Dict[str, OpStat] = {}
    for stats in dicts:
        for name, stat in stats.items():
            merged[name] = merged[name].merged(stat) if name in merged else OpStat(
                **vars(stat)
            )
    return merged


class profile_ops:
    """Context manager collecting op stats for a block.

    Yields the profiler; on exit the block's *delta* is kept in
    ``self.stats`` and profiling is restored to its previous state.
    """

    def __enter__(self) -> "profile_ops":
        self._was_on = profiling_enabled()
        profiler = enable_op_profiling()
        self._before = profiler.snapshot()
        self.stats: Dict[str, OpStat] = {}
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stats = op_stats_delta(self._before)
        if not self._was_on:
            disable_op_profiling()


def workspace_op_stat(
    before: Optional["WorkspaceStats"] = None,
) -> Optional[OpStat]:
    """The active backend's freelist counters as a synthetic :class:`OpStat`.

    ``before`` subtracts an earlier :meth:`~repro.nn.backend.ArrayBackend.
    workspace_stats` snapshot from the hit/miss counters, turning the
    cumulative totals into a per-round delta; resident bytes stay absolute
    (they describe what is parked in the pool *now*).  Returns ``None``
    when the backend pools nothing (e.g. the stateless numpy backend).
    """
    backend = get_backend()
    stats = backend.workspace_stats()
    hits, misses = stats.hits, stats.misses
    if before is not None:
        hits -= before.hits
        misses -= before.misses
    if not (hits or misses or stats.resident_bytes):
        return None
    return OpStat(
        calls=hits,
        backward_calls=misses,
        bytes_out=stats.resident_bytes,
        backend=backend.name,
    )


def _format_workspace_line(stat: OpStat) -> str:
    return (
        f"{WORKSPACE_STAT_KEY:<14} {stat.backend or '-':<12} "
        f"hits={stat.calls} misses={stat.backward_calls} "
        f"resident={stat.bytes_out / 1e6:.2f} MB"
    )


def format_op_table(stats: Optional[Dict[str, OpStat]] = None) -> str:
    """Render op stats as an aligned text table, slowest first.

    A :data:`WORKSPACE_STAT_KEY` entry is rendered as a footer line (the
    freelist counters are not an op); when called live (``stats=None``) the
    active backend's current workspace counters are appended the same way.
    """
    live = stats is None
    stats = get_op_stats() if live else dict(stats)
    workspace = stats.pop(WORKSPACE_STAT_KEY, None)
    if workspace is None and live:
        workspace = workspace_op_stat()
    if not stats:
        if workspace is not None:
            return _format_workspace_line(workspace)
        return "(no ops profiled)"
    header = (
        f"{'op':<14} {'backend':<12} {'calls':>8} {'fwd ms':>10} "
        f"{'bwd calls':>10} {'bwd ms':>10} {'MB out':>10}"
    )
    lines = [header, "-" * len(header)]
    for name, stat in sorted(
        stats.items(), key=lambda item: item[1].total_seconds, reverse=True
    ):
        lines.append(
            f"{name:<14} {stat.backend or '-':<12} {stat.calls:>8d} "
            f"{stat.forward_seconds * 1e3:>10.2f} "
            f"{stat.backward_calls:>10d} {stat.backward_seconds * 1e3:>10.2f} "
            f"{stat.bytes_out / 1e6:>10.2f}"
        )
    totals = merge_op_stats(stats)
    total = OpStat()
    for stat in totals.values():
        total = total.merged(stat)
    lines.append("-" * len(header))
    lines.append(
        f"{'total':<14} {total.backend or '-':<12} {total.calls:>8d} "
        f"{total.forward_seconds * 1e3:>10.2f} "
        f"{total.backward_calls:>10d} {total.backward_seconds * 1e3:>10.2f} "
        f"{total.bytes_out / 1e6:>10.2f}"
    )
    if workspace is not None:
        lines.append(_format_workspace_line(workspace))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# gradcheck
# ----------------------------------------------------------------------
TensorsLike = Union[Tensor, Sequence[Tensor]]


def _default_tolerances(checked: Sequence[Tensor]) -> Tuple[float, float]:
    if any(t.dtype == np.float32 for t in checked):
        return 1e-3, 1e-2  # atol, rtol — float32 analytic error dominates
    return 1e-5, 1e-4


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: TensorsLike,
    *,
    eps: float = 1e-6,
    atol: Optional[float] = None,
    rtol: Optional[float] = None,
    seed: int = 0,
    op_name: Optional[str] = None,
    backend: Optional[str] = None,
) -> bool:
    """Verify ``fn``'s analytic gradients against central finite differences.

    ``fn`` maps one or more :class:`Tensor` inputs to a single Tensor
    output (any shape); gradients are checked for every input with
    ``requires_grad``.  Non-scalar outputs are reduced with a fixed random
    projection so every output element influences the check.  ``fn`` must
    be deterministic — stochastic ops (dropout) should construct their RNG
    inside ``fn`` from a fixed seed.

    The numerical gradient is always computed on float64 copies of the
    inputs (central differences in float32 drown in rounding error); the
    analytic gradient runs in the inputs' real dtypes, and default
    tolerances widen automatically when any checked input is float32.

    ``backend`` pins the whole check (analytic *and* numerical passes) to
    a named array backend; ``None`` checks whatever backend is active.
    The numerical pass additionally forces the float64 dtype policy, so a
    float32 compute policy cannot round away the finite-difference probe.

    Raises :class:`GradcheckError` (naming ``op_name``) on the first
    violated invariant: a missing gradient, a gradient whose shape differs
    from its tensor's shape, or an analytic/numerical mismatch.  Returns
    ``True`` when everything agrees.
    """
    if backend is not None:
        with use_backend(backend):
            return gradcheck(
                fn, inputs, eps=eps, atol=atol, rtol=rtol, seed=seed, op_name=op_name
            )
    tensors = [inputs] if isinstance(inputs, Tensor) else list(inputs)
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    checked = [(i, t) for i, t in enumerate(tensors) if t.requires_grad]
    if not checked:
        raise ValueError("gradcheck needs at least one input with requires_grad")
    label = op_name or getattr(fn, "__name__", "<fn>")
    if atol is None or rtol is None:
        default_atol, default_rtol = _default_tolerances([t for _, t in checked])
        atol = default_atol if atol is None else atol
        rtol = default_rtol if rtol is None else rtol

    for _, tensor in checked:
        tensor.zero_grad()
    out = fn(*tensors)
    if not isinstance(out, Tensor):
        raise GradcheckError(f"{label}: fn must return a Tensor, got {type(out)!r}")
    projection = np.random.default_rng(seed).normal(size=out.shape)
    scalar = (out * Tensor(projection)).sum()
    scalar.backward()

    analytic: Dict[int, np.ndarray] = {}
    for index, tensor in checked:
        if tensor.grad is None:
            raise GradcheckError(
                f"{label}: input {index} received no gradient — the op's "
                "backward never reached it"
            )
        if tensor.grad.shape != tensor.shape:
            raise GradcheckError(
                f"{label}: input {index} accumulated a gradient of shape "
                f"{tensor.grad.shape} but the tensor has shape {tensor.shape} "
                "— the backward pass mis-maps gradient elements"
            )
        analytic[index] = np.array(tensor.grad, dtype=np.float64, copy=True)

    base = [np.array(t.data, dtype=np.float64, copy=True) for t in tensors]

    def evaluate(datas: List[np.ndarray]) -> float:
        # Pin the float64 policy for the numerical pass: under a float32
        # compute policy the Tensor(d) leaves would be cast down and the
        # eps-sized probes would drown in rounding error.  A no-op under
        # the default policy, so the reference path is untouched.
        with use_backend(compute_dtype="float64"):
            result = fn(*[Tensor(d) for d in datas])
        return float((np.asarray(result.data, dtype=np.float64) * projection).sum())

    for index, tensor in checked:
        numeric = np.zeros_like(base[index])
        flat = base[index].reshape(-1)
        numeric_flat = numeric.reshape(-1)
        for j in range(flat.size):
            original = flat[j]
            flat[j] = original + eps
            plus = evaluate(base)
            flat[j] = original - eps
            minus = evaluate(base)
            flat[j] = original
            numeric_flat[j] = (plus - minus) / (2.0 * eps)
        mismatch = ~np.isclose(analytic[index], numeric, atol=atol, rtol=rtol)
        if mismatch.any():
            bad = tuple(int(k) for k in np.argwhere(mismatch)[0])
            max_err = float(np.abs(analytic[index] - numeric).max())
            raise GradcheckError(
                f"{label}: analytic and numerical gradients of input {index} "
                f"disagree at {bad}: analytic={analytic[index][bad]:.6g}, "
                f"numeric={numeric[bad]:.6g} (max abs error {max_err:.3g}, "
                f"atol={atol:g}, rtol={rtol:g})"
            )
    return True


# Honour REPRO_NN_DEBUG at import time so the guards cover whole runs
# (including process-backend workers, which inherit the environment)
# without any code change.
if env_debug_requested():
    enable_debug()
