"""Ablations of CIP's design choices (DESIGN.md section 5).

* dual vs single channel (utility of the second blend component);
* lambda_m (utility vs inverse-MI exposure trade-off);
* personalized vs shared perturbation (the non-i.i.d. utility mechanism).
"""

from benchmarks.conftest import run_and_report


def test_ablation_dual_channel(benchmark, profile):
    result = run_and_report(benchmark, "ablation_dual_channel", profile)
    rows = {row["variant"]: row for row in result.rows}
    assert set(rows) == {"dual_channel", "single_channel"}
    # Both variants keep the attack well below the undefended level (~0.85);
    # at reproduction scale the single-channel variant is competitive on
    # utility (a measured deviation from the Fig. 3 rationale — see
    # EXPERIMENTS.md), so the assertion covers the privacy axis only.
    for row in rows.values():
        assert row["malt_attack_acc"] < 0.75
        assert 0.0 <= row["test_acc"] <= 1.0


def test_ablation_lambda_m(benchmark, profile):
    result = run_and_report(benchmark, "ablation_lambda_m", profile)
    by_lambda = {row["lambda_m"]: row for row in result.rows}
    # a huge lambda_m costs utility relative to the paper's tiny value
    assert by_lambda["1e-01"]["test_acc"] <= by_lambda["1e-06"]["test_acc"] + 0.05
    for row in result.rows:
        assert 0.0 <= row["inverse_mi_acc"] <= 1.0


def test_ablation_shared_t(benchmark, profile):
    result = run_and_report(benchmark, "ablation_shared_t", profile)
    accs = {row["variant"]: row["mean_client_test_acc"] for row in result.rows}
    assert set(accs) == {"personalized_t", "shared_frozen_t"}
    # Both federations learn something; the personalized-vs-shared gap is
    # reported for inspection (it needs paper-scale training to stabilize).
    for value in accs.values():
        assert 0.0 <= value <= 1.0
