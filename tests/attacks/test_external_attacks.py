"""The five external MI attacks: signal on an overfit target, collapse on CIP."""

import numpy as np
import pytest

from repro.attacks import (
    ObBlindMIAttack,
    ObLabelAttack,
    ObMALTAttack,
    ObNNAttack,
    PbBayesAttack,
    evaluate_attack,
)
from repro.attacks.ob_blindmi import gaussian_mmd
from repro.attacks.ob_nn import posterior_features
from repro.attacks.pb_bayes import whitebox_features


ALL_ATTACKS = [
    ("Ob-Label", lambda: ObLabelAttack()),
    ("Ob-MALT", lambda: ObMALTAttack()),
    ("Ob-NN", lambda: ObNNAttack(epochs=30, seed=0)),
    ("Ob-BlindMI", lambda: ObBlindMIAttack(num_generated=20, max_iterations=3, seed=0)),
    ("Pb-Bayes", lambda: PbBayesAttack()),
]


class TestAttacksOnOverfitTarget:
    @pytest.mark.parametrize("name,make", ALL_ATTACKS)
    def test_beats_random_guessing(self, name, make, overfit_target, attack_data):
        report = evaluate_attack(make(), overfit_target, attack_data)
        assert report.accuracy > 0.6, f"{name} failed to exploit overfitting"
        assert report.attack == name

    @pytest.mark.parametrize("name,make", ALL_ATTACKS)
    def test_scores_in_unit_interval(self, name, make, overfit_target, attack_data):
        attack = make()
        attack.fit(overfit_target, attack_data)
        scores = attack.score(overfit_target, attack_data.eval_members)
        assert scores.min() >= 0.0 and scores.max() <= 1.0


class TestAttacksCollapseUnderCIP:
    @pytest.mark.parametrize(
        "name,make", [a for a in ALL_ATTACKS if a[0] != "Pb-Bayes"]
    )
    def test_near_random_on_cip(self, name, make, cip_target, attack_data):
        report = evaluate_attack(make(), cip_target, attack_data)
        assert report.accuracy < 0.65, f"{name} should collapse under CIP"

    def test_pb_bayes_weakened_on_cip(self, cip_target, overfit_target, attack_data):
        strong = evaluate_attack(PbBayesAttack(), overfit_target, attack_data)
        weak = evaluate_attack(PbBayesAttack(), cip_target, attack_data)
        assert weak.accuracy < strong.accuracy


class TestObMALT:
    def test_threshold_between_pool_means(self, overfit_target, attack_data):
        attack = ObMALTAttack()
        attack.fit(overfit_target, attack_data)
        member_losses = overfit_target.per_sample_loss(
            attack_data.known_members.inputs, attack_data.known_members.labels
        )
        nonmember_losses = overfit_target.per_sample_loss(
            attack_data.known_nonmembers.inputs, attack_data.known_nonmembers.labels
        )
        assert member_losses.mean() < attack.threshold < nonmember_losses.mean()


class TestObNN:
    def test_requires_fit(self, overfit_target, attack_data):
        with pytest.raises(RuntimeError):
            ObNNAttack().score(overfit_target, attack_data.eval_members)

    def test_feature_shape(self, overfit_target, attack_data):
        feats = posterior_features(overfit_target, attack_data.eval_members, top_k=3)
        assert feats.shape == (len(attack_data.eval_members), 5)

    def test_top_k_clamped_to_classes(self, overfit_target, attack_data):
        feats = posterior_features(overfit_target, attack_data.eval_members, top_k=10)
        assert feats.shape[1] == 12


class TestBlindMI:
    def test_mmd_zero_for_identical_sets(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(10, 3))
        assert abs(gaussian_mmd(x, x)) < 1e-9

    def test_mmd_positive_for_different_sets(self):
        rng = np.random.default_rng(1)
        x = rng.normal(0, 1, size=(20, 3))
        y = rng.normal(5, 1, size=(20, 3))
        assert gaussian_mmd(x, y) > 0.1

    def test_mmd_empty_set(self):
        assert gaussian_mmd(np.zeros((0, 3)), np.zeros((5, 3))) == 0.0


class TestPbBayes:
    def test_whitebox_features_shape(self, overfit_target, attack_data):
        feats = whitebox_features(overfit_target, attack_data.eval_members.take(5))
        assert feats.shape == (5, 3)
        assert np.isfinite(feats).all()
