"""Synthetic class-structured data generators.

The paper evaluates on CIFAR-100, CIFAR-AUG, CH-MNIST and Purchase-50; none
of those is downloadable in this offline environment, so each is replaced by
a deterministic generator that reproduces the property the paper relies on:

* every class is a noisy cloud around a class *template* (image or vector),
* the training set is a finite sample of that cloud, so a high-capacity model
  memorizes it and members get systematically lower loss than non-members —
  exactly the signal every MI attack in the paper exploits,
* class separability (template distance vs noise) controls the
  overfit-vs-well-trained regime (CIFAR-100-like vs CH-MNIST-like).

All generators take a single integer seed; the same seed always produces the
same dataset, independent of call order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.data.dataset import Dataset
from repro.utils.rng import derive_rng


@dataclass(frozen=True)
class ImageSpec:
    """Geometry + noise profile of a synthetic image dataset."""

    num_classes: int
    channels: int
    height: int
    width: int
    noise_scale: float  # intra-class noise std (pre-clip)
    template_scale: float = 1.0  # inter-class template contrast

    @property
    def shape(self) -> Tuple[int, int, int]:
        return (self.channels, self.height, self.width)


def class_templates(spec: ImageSpec, seed: int) -> np.ndarray:
    """Per-class template images in [0, 1], shape (K, C, H, W).

    Templates are smooth low-frequency patterns (random sinusoid mixtures),
    which gives conv nets genuine spatial structure to learn rather than
    pure white noise.
    """
    rng = derive_rng(seed, "templates")
    ys, xs = np.meshgrid(
        np.linspace(0, 1, spec.height), np.linspace(0, 1, spec.width), indexing="ij"
    )
    templates = np.empty((spec.num_classes, spec.channels, spec.height, spec.width))
    for k in range(spec.num_classes):
        for c in range(spec.channels):
            pattern = np.zeros_like(ys)
            # Low spatial frequencies: like natural images, the class signal
            # must survive sub-pixel resampling (the CIFAR-AUG pipeline).
            for _ in range(3):
                fy, fx = rng.uniform(0.4, 1.8, size=2)
                phase_y, phase_x = rng.uniform(0, 2 * np.pi, size=2)
                weight = rng.uniform(0.3, 1.0)
                pattern += weight * np.sin(2 * np.pi * fy * ys + phase_y) * np.cos(
                    2 * np.pi * fx * xs + phase_x
                )
            span = pattern.max() - pattern.min()
            pattern = (pattern - pattern.min()) / (span + 1e-12)
            templates[k, c] = 0.5 + spec.template_scale * (pattern - 0.5)
    return np.clip(templates, 0.0, 1.0)


def generate_image_dataset(
    spec: ImageSpec,
    samples_per_class: int,
    seed: int,
    split: str = "train",
) -> Dataset:
    """Sample a dataset from the class clouds defined by ``spec``/``seed``.

    ``split`` only alters the noise stream, not the templates: train and test
    therefore come from the *same* distribution, mirroring how a real dataset
    is divided into members and non-members.
    """
    templates = class_templates(spec, seed)
    rng = derive_rng(seed, "samples", split)
    total = samples_per_class * spec.num_classes
    labels = np.repeat(np.arange(spec.num_classes), samples_per_class)
    noise = rng.normal(0.0, spec.noise_scale, size=(total,) + spec.shape)
    inputs = np.clip(templates[labels] + noise, 0.0, 1.0)
    order = rng.permutation(total)
    return Dataset(inputs[order], labels[order], spec.num_classes)


@dataclass(frozen=True)
class TabularSpec:
    """Geometry of a synthetic binary-vector dataset (Purchase-50-like)."""

    num_classes: int
    num_features: int
    flip_probability: float  # chance each bit deviates from its prototype


def tabular_prototypes(spec: TabularSpec, seed: int) -> np.ndarray:
    """Per-class binary prototype vectors, shape (K, F)."""
    rng = derive_rng(seed, "prototypes")
    return (rng.random((spec.num_classes, spec.num_features)) < 0.5).astype(np.float64)


def generate_tabular_dataset(
    spec: TabularSpec,
    samples_per_class: int,
    seed: int,
    split: str = "train",
) -> Dataset:
    """Bernoulli samples around class prototypes (bit-flip noise)."""
    prototypes = tabular_prototypes(spec, seed)
    rng = derive_rng(seed, "samples", split)
    total = samples_per_class * spec.num_classes
    labels = np.repeat(np.arange(spec.num_classes), samples_per_class)
    flips = rng.random((total, spec.num_features)) < spec.flip_probability
    inputs = np.abs(prototypes[labels] - flips.astype(np.float64))
    order = rng.permutation(total)
    return Dataset(inputs[order], labels[order], spec.num_classes)
