#!/usr/bin/env python3
"""A privacy-preserving medical-imaging federation.

The paper's motivating scenario: hospitals collaboratively train a tissue
classifier (CH-MNIST, colorectal-cancer histology) without any hospital's
patient data leaking through membership inference — a HIPAA concern.

This example runs the *full federated pipeline* with a malicious server:

* four "hospitals" with non-i.i.d. tissue-class distributions (specialist
  clinics see different tissue types);
* FedAvg coordination by a server that *passively records* each hospital's
  local model every round (Nasr et al.'s internal adversary);
* the same federation with CIP clients — each hospital keeps a secret
  perturbation — where the same server attack fails.

Run:  python examples/medical_federation.py
"""

from __future__ import annotations

import numpy as np

from repro.attacks.internal import (
    PassiveServerAttack,
    StateEvaluator,
    cip_zero_blend_forward,
)
from repro.core import CIPClient, CIPConfig
from repro.data import load_chmnist, partition_by_classes
from repro.fl import ClientConfig, FLClient, FLServer, FederatedSimulation
from repro.fl.training import evaluate_model
from repro.nn.models import build_model

NUM_HOSPITALS = 4
CLASSES_PER_HOSPITAL = 4  # specialist clinics: 4 of 8 tissue types each
ROUNDS = 30  # CIP federations need ~30 rounds to reach the defended regime
SNAPSHOT_TAIL = 3  # the malicious server records the last rounds


def run_federation(bundle, shards, use_cip: bool):
    """Train one federation; return (test accuracy, simulation, forward)."""
    in_channels = bundle.train.inputs.shape[1]
    client_config = ClientConfig(lr=5e-2)
    if use_cip:
        config = CIPConfig(alpha=0.5, lambda_m=1e-6, perturbation_lr=1e-2)
        factory = lambda: build_model(  # noqa: E731
            "resnet", bundle.num_classes, dual_channel=True, in_channels=in_channels, seed=3
        )
        clients = [
            CIPClient(i, shards[i], factory, cip_config=config, config=client_config, seed=i)
            for i in range(NUM_HOSPITALS)
        ]
        forward = cip_zero_blend_forward(config)
    else:
        factory = lambda: build_model(  # noqa: E731
            "resnet", bundle.num_classes, in_channels=in_channels, seed=3
        )
        clients = [
            FLClient(i, shards[i], factory, client_config, seed=i)
            for i in range(NUM_HOSPITALS)
        ]
        from repro.attacks.internal import plain_forward as forward  # type: ignore

    server = FLServer(factory)
    simulation = FederatedSimulation(
        server, clients, snapshot_rounds=range(ROUNDS - SNAPSHOT_TAIL, ROUNDS)
    )
    simulation.run(ROUNDS)
    if use_cip:
        accuracy = float(np.mean(simulation.evaluate_clients(bundle.test)))
    else:
        accuracy = evaluate_model(server.model, bundle.test).accuracy
    return accuracy, simulation, factory, forward


def attack_hospital_zero(bundle, shards, simulation, factory, forward) -> float:
    """The malicious server infers membership of hospital 0's patients."""
    evaluator = StateEvaluator(factory(), forward=forward)
    attack = PassiveServerAttack(evaluator, victim_id=0)
    patients = shards[0].shuffled(seed=5)
    outsiders = bundle.test.shuffled(seed=6)
    pool = min(len(patients) // 2, len(outsiders) // 2, 40)
    known_m, eval_m = patients.take(2 * pool).split(0.5, seed=0)
    known_n, eval_n = outsiders.take(2 * pool).split(0.5, seed=0)
    report = attack.run(simulation.history.snapshots, known_m, known_n, eval_m, eval_n)
    return report.accuracy


def main() -> None:
    bundle = load_chmnist(seed=4, samples_per_class=20)
    shards = partition_by_classes(
        bundle.train, NUM_HOSPITALS, CLASSES_PER_HOSPITAL, seed=9
    )
    print(f"{NUM_HOSPITALS} hospitals, {len(shards[0])} histology images each, "
          f"{CLASSES_PER_HOSPITAL}/{bundle.num_classes} tissue classes per site\n")

    acc, sim, factory, forward = run_federation(bundle, shards, use_cip=False)
    attack = attack_hospital_zero(bundle, shards, sim, factory, forward)
    print(f"[no defense] global test acc {acc:.3f} | server's MI attack acc {attack:.3f}")

    acc_cip, sim_cip, factory_cip, forward_cip = run_federation(bundle, shards, use_cip=True)
    attack_cip = attack_hospital_zero(bundle, shards, sim_cip, factory_cip, forward_cip)
    print(f"[CIP]        mean client test acc {acc_cip:.3f} | server's MI attack acc {attack_cip:.3f}")

    print()
    if attack_cip < attack:
        print("CIP reduced the malicious server's membership-inference accuracy "
              f"by {attack - attack_cip:.3f} while keeping the federation useful.")


if __name__ == "__main__":
    main()
