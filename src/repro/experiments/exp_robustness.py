"""Robustness telemetry: per-round fault/attack counters per engine (RQ5 ext).

Not a paper table — an execution-layer companion to Table XI.  It runs the
same seeded fault schedule (crashes, transients, stragglers, heavy-tailed
arrival jitter) plus a sign-flip Byzantine minority through the synchronous
and asynchronous engines and reports the per-round robustness counters now
recorded in :class:`repro.fl.simulation.RoundMetrics`: dropped, retried,
quarantined, and stale-discarded clients, plus the mean version lag of the
aggregated updates.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import ByzantineConfig, FaultConfig, ScreeningConfig
from repro.data.partition import partition_iid
from repro.data.synthetic import TabularSpec, generate_tabular_dataset
from repro.experiments.profiles import Profile
from repro.experiments.registry import register
from repro.experiments.results import ExperimentResult
from repro.fl.client import ClientConfig, FLClient
from repro.fl.executor import make_executor
from repro.fl.server import FLServer
from repro.fl.simulation import FederatedSimulation
from repro.utils.rng import derive_rng

NUM_CLIENTS = 8
ATTACKERS = (2, 5)

FAULTS = FaultConfig(
    crash_rate=0.05,
    transient_rate=0.1,
    straggler_rate=0.3,
    straggler_delay_seconds=0.2,
    jitter_scale=0.1,
    jitter_sigma=0.75,
    seed=17,
)
BYZANTINE = ByzantineConfig(attack="sign_flip", clients=ATTACKERS, scale=5.0, seed=17)


def _federation(seed: int = 0):
    spec = TabularSpec(num_classes=4, num_features=32, flip_probability=0.05)
    dataset = generate_tabular_dataset(spec, samples_per_class=48, seed=seed)
    shards = partition_iid(dataset, NUM_CLIENTS, seed=derive_rng(seed, "robust"))

    from repro.nn.models import build_model

    def factory():
        return build_model(
            "mlp", spec.num_classes, in_features=spec.num_features,
            hidden=(32,), seed=derive_rng(seed, "robust-m"),
        )

    clients = [
        FLClient(i, shards[i], factory, ClientConfig(lr=5e-2),
                 seed=derive_rng(seed, "robust-c", i))
        for i in range(NUM_CLIENTS)
    ]
    return factory, clients, dataset


def _executor(engine: str):
    common = dict(
        fault_config=FAULTS,
        byzantine_config=BYZANTINE,
        max_retries=2,
        min_participation=0.25,
        client_timeout=None,
    )
    if engine == "async":
        return make_executor(
            backend="async",
            buffer_size=NUM_CLIENTS // 2,
            staleness_policy="polynomial",
            staleness_budget=8,
            screening=ScreeningConfig(outlier_threshold=3.0),
            screen_window=2 * NUM_CLIENTS,
            **common,
        )
    return make_executor(backend="sequential", **common)


@register("robustness", "Robustness counters: sync vs async engine", "RQ5 (ext)")
def robustness(profile: Profile) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="robustness",
        title="Per-round robustness counters under seeded faults and a "
        "sign-flip minority",
        columns=[
            "engine",
            "rounds",
            "dropped",
            "retried",
            "rejected",
            "stale_discarded",
            "mean_staleness",
            "final_acc",
        ],
    )
    rounds = max(4, min(profile.fl_rounds, 12))
    for engine in ("sequential", "async"):
        factory, clients, dataset = _federation()
        # The sync engine screens server-side at aggregation; the async
        # engine screens at admission with its sliding window.
        server = FLServer(
            factory,
            screening=(
                ScreeningConfig(outlier_threshold=3.0)
                if engine == "sequential"
                else None
            ),
        )
        with FederatedSimulation(
            server, clients, executor=_executor(engine),
            eval_dataset=dataset, eval_every=rounds,
        ) as simulation:
            simulation.run(rounds)
        metrics = simulation.history.round_metrics
        result.add_row(
            engine=engine,
            rounds=rounds,
            dropped=sum(len(m.dropped_clients) for m in metrics),
            retried=sum(len(m.retried_clients) for m in metrics),
            rejected=sum(len(m.rejected_clients) for m in metrics),
            stale_discarded=sum(len(m.stale_clients) for m in metrics),
            mean_staleness=float(np.mean([m.mean_staleness for m in metrics])),
            final_acc=simulation.history.final_test_accuracy(),
        )
    result.add_note(
        f"clients={NUM_CLIENTS}, attackers={list(ATTACKERS)} (sign_flip x5); "
        "faults: 5% crash, 10% transient, 30% straggler + lognormal jitter "
        "(seed 17); async: buffer=4, polynomial decay, staleness budget 8"
    )
    return result
