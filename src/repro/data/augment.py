"""Image augmentation (the CIFAR-AUG pipeline).

The paper's CIFAR-AUG setting resizes each image to 80x80, randomly crops to
64x64, and randomly flips left-right.  We implement the same three transforms
— resize (bilinear), random crop, horizontal flip — at the reproduction's
scaled-down geometry, composable via :class:`AugmentationPipeline`.

All transforms operate on NCHW float arrays and take an explicit RNG.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

import numpy as np

from repro.utils.rng import SeedLike, as_generator

Transform = Callable[[np.ndarray, np.random.Generator], np.ndarray]


def resize(images: np.ndarray, height: int, width: int) -> np.ndarray:
    """Bilinear resize of NCHW images."""
    batch, channels, in_h, in_w = images.shape
    if (in_h, in_w) == (height, width):
        return images
    # Sample positions in source coordinates (align-corners=False convention).
    ys = (np.arange(height) + 0.5) * in_h / height - 0.5
    xs = (np.arange(width) + 0.5) * in_w / width - 0.5
    ys = np.clip(ys, 0, in_h - 1)
    xs = np.clip(xs, 0, in_w - 1)
    y0 = np.floor(ys).astype(int)
    x0 = np.floor(xs).astype(int)
    y1 = np.minimum(y0 + 1, in_h - 1)
    x1 = np.minimum(x0 + 1, in_w - 1)
    wy = (ys - y0)[None, None, :, None]
    wx = (xs - x0)[None, None, None, :]
    top = images[:, :, y0][:, :, :, x0] * (1 - wx) + images[:, :, y0][:, :, :, x1] * wx
    bottom = images[:, :, y1][:, :, :, x0] * (1 - wx) + images[:, :, y1][:, :, :, x1] * wx
    return top * (1 - wy) + bottom * wy


def random_crop(images: np.ndarray, size: int, rng: np.random.Generator) -> np.ndarray:
    """Random square crop (one offset per image)."""
    batch, channels, height, width = images.shape
    if size > height or size > width:
        raise ValueError("crop size exceeds image size")
    out = np.empty((batch, channels, size, size), dtype=images.dtype)
    offsets_y = rng.integers(0, height - size + 1, size=batch)
    offsets_x = rng.integers(0, width - size + 1, size=batch)
    for i in range(batch):
        out[i] = images[i, :, offsets_y[i] : offsets_y[i] + size, offsets_x[i] : offsets_x[i] + size]
    return out


def center_crop(images: np.ndarray, size: int) -> np.ndarray:
    """Deterministic center crop (used at evaluation time)."""
    height, width = images.shape[2:]
    off_y = (height - size) // 2
    off_x = (width - size) // 2
    return images[:, :, off_y : off_y + size, off_x : off_x + size]


def random_horizontal_flip(
    images: np.ndarray, rng: np.random.Generator, probability: float = 0.5
) -> np.ndarray:
    """Flip each image left-right with the given probability."""
    flips = rng.random(len(images)) < probability
    out = images.copy()
    out[flips] = out[flips, :, :, ::-1]
    return out


class AugmentationPipeline:
    """Composable train-time augmentation with its own RNG stream.

    The pipeline is a callable ``(batch) -> batch`` so trainers can apply it
    uniformly; a no-op pipeline (``AugmentationPipeline([])``) is the
    identity and is what non-augmented datasets use.
    """

    def __init__(self, transforms: Sequence[Transform], seed: SeedLike = None) -> None:
        self.transforms: List[Transform] = list(transforms)
        self._rng = as_generator(seed)

    def __call__(self, images: np.ndarray) -> np.ndarray:
        for transform in self.transforms:
            images = transform(images, self._rng)
        return images

    def __len__(self) -> int:
        return len(self.transforms)


def cifar_aug_pipeline(
    base_size: int, upscale: int, crop: int, seed: SeedLike = None
) -> AugmentationPipeline:
    """The paper's CIFAR-AUG recipe: resize up, random crop, random flip.

    Paper geometry is 32 -> 80 -> 64; the reproduction scales this ratio to
    the synthetic image size (e.g. 12 -> 16 -> 12).
    """

    def _resize(images: np.ndarray, _rng: np.random.Generator) -> np.ndarray:
        return resize(images, upscale, upscale)

    def _crop(images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return random_crop(images, crop, rng)

    def _flip(images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return random_horizontal_flip(images, rng)

    if crop != base_size:
        raise ValueError("crop size must return images to the model's input size")
    return AugmentationPipeline([_resize, _crop, _flip], seed=seed)
