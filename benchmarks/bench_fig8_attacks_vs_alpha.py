"""[Figure 8] Five state-of-the-art attacks vs alpha on all four datasets.

Paper: attack accuracy decreases as alpha grows on every dataset; the
overfit CIFAR-100 model is the most attackable.  Shape checks: for each
dataset the mean attack accuracy at the largest alpha is below the mean at
the smallest alpha, and the largest-alpha mean sits near random guessing.
"""

import numpy as np

from benchmarks.conftest import run_and_report


def test_fig8_attacks_vs_alpha(benchmark, profile):
    result = run_and_report(benchmark, "fig8", profile)
    alphas = sorted(profile.alphas)
    datasets = {row["dataset"] for row in result.rows}
    assert datasets == {"cifar100", "cifar_aug", "chmnist", "purchase50"}

    weakened = 0
    for dataset in datasets:
        rows = [r for r in result.rows if r["dataset"] == dataset]
        mean_at = {
            alpha: np.mean([r["attack_acc"] for r in rows if r["alpha"] == alpha])
            for alpha in alphas
        }
        if mean_at[alphas[-1]] <= mean_at[alphas[0]] + 0.02:
            weakened += 1
        # strong-alpha deployment approaches random guessing
        assert mean_at[alphas[-1]] < 0.72
    # the downward trend holds on at least 3 of the 4 datasets
    assert weakened >= 3
