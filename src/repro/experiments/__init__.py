"""Experiment harness: one registered experiment per paper table/figure.

Importing this package loads every experiment module, populating the
registry.  Usage::

    from repro.experiments import run_experiment, QUICK, format_table
    print(format_table(run_experiment("table5", QUICK)))
"""

from repro.experiments.profiles import FULL, QUICK, SMOKE, Profile, get_profile
from repro.experiments.registry import (
    ExperimentSpec,
    get_experiment,
    list_experiments,
    register,
    run_experiment,
)
from repro.experiments.results import (
    ExperimentResult,
    format_table,
    render_ascii_series,
)
from repro.experiments.common import (
    CIPArtifact,
    LegacyArtifact,
    attack_pools,
    clear_caches,
    get_bundle,
    make_cip_config,
    train_cip,
    train_legacy,
)

# Register all experiments.
from repro.experiments import (  # noqa: F401  (imported for registration side effect)
    exp_setup,
    exp_motivation,
    exp_internal,
    exp_external,
    exp_heterogeneity,
    exp_attacks,
    exp_adaptive,
    exp_overhead,
    exp_ablations,
    exp_memguard,
    exp_robustness,
    exp_scale,
)

__all__ = [
    "Profile",
    "QUICK",
    "FULL",
    "SMOKE",
    "get_profile",
    "ExperimentSpec",
    "register",
    "run_experiment",
    "get_experiment",
    "list_experiments",
    "ExperimentResult",
    "format_table",
    "render_ascii_series",
    "CIPArtifact",
    "LegacyArtifact",
    "train_cip",
    "train_legacy",
    "get_bundle",
    "attack_pools",
    "make_cip_config",
    "clear_caches",
]
