"""Model state persistence and wire serialization.

State dicts are flat ``{dotted.name: ndarray}`` mappings (see
:meth:`repro.nn.layers.Module.state_dict`); this module saves/loads them with
``numpy.savez`` so checkpoints are portable and dependency-free.

:func:`pack_state_dict` / :func:`unpack_state_dict` serialize a state dict to
a single ``bytes`` payload for inter-process transfer: the FL parallel
executor packs the global state **once per round** and hands every worker the
same read-only buffer instead of cloning the state dict per client.  Packing
optionally down-casts floating arrays to ``float32`` — halving wire size at
the cost of bitwise reproducibility against the uncompressed path.
"""

from __future__ import annotations

import io
import os
from typing import Dict, Optional

import numpy as np

#: dtypes accepted for wire compression (``None`` means "preserve dtype").
WIRE_DTYPES = ("float32", "float64")


def save_state_dict(state: Dict[str, np.ndarray], path: str) -> None:
    """Serialize a state dict to ``path`` (npz)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **state)


def load_state_dict(path: str) -> Dict[str, np.ndarray]:
    """Load a state dict saved by :func:`save_state_dict`."""
    with np.load(path if path.endswith(".npz") else path + ".npz") as archive:
        return {name: archive[name] for name in archive.files}


def clone_state_dict(state: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Deep-copy a state dict (FL clients clone the global model each round)."""
    return {name: np.array(value, copy=True) for name, value in state.items()}


def state_dict_nbytes(state: Dict[str, np.ndarray]) -> int:
    """Payload size of a state dict in bytes (arrays only, no framing)."""
    return int(sum(value.nbytes for value in state.values()))


def _cast_for_wire(value: np.ndarray, wire_dtype: Optional[str]) -> np.ndarray:
    if wire_dtype is None or not np.issubdtype(value.dtype, np.floating):
        return value
    return value.astype(wire_dtype, copy=False)


def pack_state_dict(
    state: Dict[str, np.ndarray], wire_dtype: Optional[str] = None
) -> bytes:
    """Serialize a state dict into one contiguous ``bytes`` payload.

    ``wire_dtype`` down-casts floating arrays (e.g. to ``"float32"``) before
    packing; integer arrays are never cast.  The payload is self-describing:
    :func:`unpack_state_dict` recovers names, shapes, and (wire) dtypes.
    """
    if wire_dtype is not None and wire_dtype not in WIRE_DTYPES:
        raise ValueError(f"wire_dtype must be one of {WIRE_DTYPES} or None")
    buffer = io.BytesIO()
    np.savez(
        buffer,
        **{name: _cast_for_wire(value, wire_dtype) for name, value in state.items()},
    )
    return buffer.getvalue()


def unpack_state_dict(payload: bytes) -> Dict[str, np.ndarray]:
    """Inverse of :func:`pack_state_dict` (arrays keep their wire dtype)."""
    with np.load(io.BytesIO(payload)) as archive:
        return {name: archive[name] for name in archive.files}


def state_dicts_allclose(
    a: Dict[str, np.ndarray], b: Dict[str, np.ndarray], atol: float = 1e-10
) -> bool:
    """Structural + numeric equality of two state dicts.

    Structure is compared strictly — same names, and per key the exact same
    shape and dtype — *before* any value comparison.  ``np.allclose`` alone
    would happily broadcast ``(3, 1)`` against ``(3,)`` and report equality,
    which let wire-corruption bugs that reshape a leaf slip past exactness
    tests.  NaNs never compare equal.
    """
    if set(a) != set(b):
        return False
    for name in a:
        va, vb = np.asarray(a[name]), np.asarray(b[name])
        if va.shape != vb.shape or va.dtype != vb.dtype:
            return False
        if not np.allclose(va, vb, atol=atol, equal_nan=False):
            return False
    return True
